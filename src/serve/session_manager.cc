#include "src/serve/session_manager.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pqcache {

SessionManager::SessionManager(const ServeOptions& options)
    : options_(options), queue_(options.max_queue) {}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    const ServeOptions& options) {
  if (options.max_sessions == 0) {
    return Status::InvalidArgument("SessionManager: max_sessions must be > 0");
  }
  if (options.max_queue == 0) {
    return Status::InvalidArgument("SessionManager: max_queue must be > 0");
  }
  PQC_RETURN_IF_ERROR(options.engine.model.Validate());
  std::unique_ptr<SessionManager> manager(new SessionManager(options));
  manager->hierarchy_ =
      std::make_unique<MemoryHierarchy>(options.engine.hardware);
  // Every session's engine accounts against the shared pools and trains
  // K-Means on the shared worker pool.
  manager->options_.engine.shared_hierarchy = manager->hierarchy_.get();
  manager->options_.engine.pool = options.pool;
  if (options.enable_prefix_sharing) {
    PrefixRegistry::Options prefix = options.prefix;
    prefix.hierarchy = manager->hierarchy_.get();
    manager->registry_ = std::make_unique<PrefixRegistry>(prefix);
  }
  return manager;
}

Result<int64_t> SessionManager::Submit(ServeRequest request) {
  if (request.prompt.empty()) {
    return Status::InvalidArgument("Submit: empty prompt");
  }
  if (request.max_new_tokens == 0) {
    return Status::InvalidArgument("Submit: max_new_tokens must be > 0");
  }
  PQC_RETURN_IF_ERROR(request.identity.Validate());
  const size_t gpu_footprint = PQCacheEngine::EstimateGpuFootprintBytes(
      options_.engine, request.prompt.size(), request.max_new_tokens);
  const size_t cpu_footprint = PQCacheEngine::EstimateCpuFootprintBytes(
      options_.engine, request.prompt.size(), request.max_new_tokens);
  MutexLock lock(submit_mu_);
  ++stats_.submitted;
  if (gpu_footprint > hierarchy_->gpu().capacity_bytes()) {
    ++stats_.rejected_capacity;
    return Status::OutOfMemory(
        "Submit: session footprint " + std::to_string(gpu_footprint) +
        " bytes exceeds the GPU pool (" +
        std::to_string(hierarchy_->gpu().capacity_bytes()) + " bytes)");
  }
  if (cpu_footprint > hierarchy_->cpu().capacity_bytes()) {
    ++stats_.rejected_capacity;
    return Status::OutOfMemory(
        "Submit: session offload footprint " + std::to_string(cpu_footprint) +
        " bytes exceeds the CPU pool (" +
        std::to_string(hierarchy_->cpu().capacity_bytes()) + " bytes)");
  }
  // Check queue space before consuming an id or constructing the Session
  // (mirrors Resume's check-before-consume ordering): a rejected submission
  // must not burn a session id nor pay the construction. Safe under
  // submit_mu_: the scheduler's only queue growth (preemption requeue) also
  // holds this lock, and every other scheduler access only shrinks lanes.
  if (queue_.size() >= queue_.capacity()) {
    ++stats_.rejected_queue_full;
    return Status::FailedPrecondition(
        "Submit: request queue full (" + std::to_string(queue_.capacity()) +
        " sessions)");
  }
  // A zero weight would starve its lane outright under DRR; normalize so
  // every tenant and user banks a positive share per round.
  request.identity.Normalize();
  const int64_t id = next_id_++;
  auto session =
      std::make_unique<Session>(id, std::move(request), options_.engine,
                                gpu_footprint, cpu_footprint);
  session->ConfigureRetry(options_.max_transient_retries,
                          options_.retry_backoff_seconds);
  PQC_CHECK(queue_.TryPush(session));
  return id;
}

Result<int64_t> SessionManager::Resume(
    SessionCheckpoint&& checkpoint,
    std::function<void(int32_t token, size_t index)> on_token) {
  if (checkpoint.prompt.empty()) {
    return Status::InvalidArgument("Resume: checkpoint has an empty prompt");
  }
  if (checkpoint.engine_state.empty()) {
    return Status::InvalidArgument(
        "Resume: checkpoint carries no engine state");
  }
  if (checkpoint.generated.size() >= checkpoint.max_new_tokens) {
    return Status::InvalidArgument(
        "Resume: the session's token budget is already spent");
  }
  PQC_RETURN_IF_ERROR(checkpoint.identity.Validate());
  // A resume restores flattened private state, so it is charged the full
  // unshared footprints (same bound an uninterrupted session of this shape
  // would be charged).
  const size_t gpu_footprint = PQCacheEngine::EstimateGpuFootprintBytes(
      options_.engine, checkpoint.prompt.size(), checkpoint.max_new_tokens);
  const size_t cpu_footprint = PQCacheEngine::EstimateCpuFootprintBytes(
      options_.engine, checkpoint.prompt.size(), checkpoint.max_new_tokens);
  MutexLock lock(submit_mu_);
  ++stats_.submitted;
  if (gpu_footprint > hierarchy_->gpu().capacity_bytes() ||
      cpu_footprint > hierarchy_->cpu().capacity_bytes()) {
    ++stats_.rejected_capacity;
    return Status::OutOfMemory(
        "Resume: session footprint can never fit the shared pools");
  }
  // Every rejection must leave the caller's checkpoint intact (it is the
  // only copy of the suspended session), so check queue space before
  // consuming it. Safe under submit_mu_: every pusher — Submit, Resume and
  // the scheduler's preemption requeue — holds this lock, and all other
  // scheduler access only shrinks lanes.
  if (queue_.size() >= queue_.capacity()) {
    ++stats_.rejected_queue_full;
    return Status::FailedPrecondition(
        "Resume: request queue full (" + std::to_string(queue_.capacity()) +
        " sessions)");
  }
  const int64_t id = next_id_++;
  auto session =
      std::make_unique<Session>(id, std::move(checkpoint), std::move(on_token),
                                options_.engine, gpu_footprint, cpu_footprint);
  session->ConfigureRetry(options_.max_transient_retries,
                          options_.retry_backoff_seconds);
  PQC_CHECK(queue_.TryPush(session));
  ++stats_.resumed;
  return id;
}

Status SessionManager::Suspend(int64_t session_id) {
  MutexLock lock(suspend_mu_);
  if (std::find(suspend_requests_.begin(), suspend_requests_.end(),
                session_id) == suspend_requests_.end()) {
    suspend_requests_.push_back(session_id);
  }
  return Status::OK();
}

Result<SessionCheckpoint> SessionManager::TakeSuspended(int64_t session_id) {
  MutexLock lock(suspend_mu_);
  auto it = suspended_.find(session_id);
  if (it == suspended_.end()) {
    return Status::NotFound("TakeSuspended: no suspended session " +
                            std::to_string(session_id));
  }
  SessionCheckpoint checkpoint = std::move(it->second);
  suspended_.erase(it);
  return checkpoint;
}

Status SessionManager::Cancel(int64_t session_id, Status reason) {
  if (reason.ok()) {
    return Status::InvalidArgument("Cancel: reason must be a non-OK Status");
  }
  MutexLock lock(suspend_mu_);
  for (const auto& pending : cancel_requests_) {
    if (pending.first == session_id) return Status::OK();
  }
  cancel_requests_.emplace_back(session_id, std::move(reason));
  return Status::OK();
}

void SessionManager::AppendRecord(SessionRecord record) {
  stats_.sessions.push_back(std::move(record));
  if (options_.on_record) options_.on_record(stats_.sessions.back());
}

void SessionManager::ProcessCancellations() {
  std::vector<std::pair<int64_t, Status>> requested;
  {
    MutexLock lock(suspend_mu_);
    if (cancel_requests_.empty()) return;
    requested.swap(cancel_requests_);
  }
  std::vector<std::pair<int64_t, Status>> keep;
  for (auto& [id, reason] : requested) {
    // Queued target: extract it un-run (no engine, no charges to release).
    auto queued = queue_.ExtractIf(
        [id = id](const Session& s) { return s.id() == id; });
    if (!queued.empty()) {
      SessionRecord record = RecordFor(*queued.front());
      record.failed = true;
      record.error = reason.ToString();
      record.error_code = reason.code();
      ++stats_.failed;
      ++stats_.cancelled;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsFailed);
      obs::MetricsRegistry::Add(obs::Counter::kSessionsCancelled);
      obs::Tracer::Instant("serve", "cancel", "session", id);
      AppendRecord(std::move(record));
      continue;
    }
    // Active target: the round boundary guarantees no step is in flight, so
    // retirement here is the same release path DispatchAndRetire takes.
    bool found = false;
    for (auto& session : active_) {
      if (session == nullptr || session->id() != id) continue;
      found = true;
      if (session->done()) break;  // Retires normally this round.
      session->DispatchNewTokens();  // Deliver what was already produced.
      session->RefreshEngineStats();
      SessionRecord record = RecordFor(*session);
      record.failed = true;
      record.error = reason.ToString();
      record.error_code = reason.code();
      ++stats_.failed;
      ++stats_.cancelled;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsFailed);
      obs::MetricsRegistry::Add(obs::Counter::kSessionsCancelled);
      obs::Tracer::Instant("serve", "cancel", "session", id);
      stats_.total_generated_tokens += session->generated().size();
      session->ReleaseEngine();
      hierarchy_->gpu().Free(session->gpu_footprint_bytes());
      hierarchy_->cpu().Free(session->cpu_footprint_bytes());
      session.reset();
      AppendRecord(std::move(record));
      break;
    }
    if (found) continue;
    // Unknown everywhere: either already terminal (drop — ids are never
    // reused) or racing a Submit that has not landed in a lane yet (keep
    // for the next round). queue_.Contains covers the latter.
    if (queue_.Contains(id)) keep.emplace_back(id, std::move(reason));
  }
  active_.erase(std::remove(active_.begin(), active_.end(), nullptr),
                active_.end());
  active_count_.store(active_.size(), std::memory_order_relaxed);
  if (!keep.empty()) {
    MutexLock lock(suspend_mu_);
    for (auto& pending : keep) cancel_requests_.push_back(std::move(pending));
  }
}

bool SessionManager::TryAdmitHead(const RequestQueue::LaneKey& lane) {
  // Only this thread pops, so a non-empty head observed here is stable
  // through the TryPop below; a Submit racing in behind the head waits for
  // the next round.
  Session* head = queue_.PeekHead(lane);
  if (head == nullptr) return false;
  uint64_t prefill_key = 0;
  if (registry_ != nullptr && !head->resumed()) {
    // Resolve prefix sharing for the head right before charging: the
    // registry grows as earlier sessions prefill, so a fresh lookup per
    // admission attempt catches chains published since the last round.
    // The matched prefix must leave the local window and the final prompt
    // position private (the exactness conditions; see prefix_registry.h).
    // (Resumed sessions restore flattened checkpoints and never attach.)
    const auto& prompt = head->request().prompt;
    const size_t lw = options_.engine.local_window;
    size_t cap = prompt.size() > lw ? prompt.size() - lw : 0;
    cap = std::min(cap, prompt.size() - 1);
    head->ResolvePrefix(registry_->Lookup(prompt, cap));
    // In-flight dedup: if the head would prefill shareable blocks that an
    // active session is already prefilling, defer it (it keeps its lane
    // position) rather than burn a redundant prefill. Once the prefiller
    // publishes, the next attempt's Lookup attaches the chain; if the
    // prefiller dies unpublished, PrunePendingPrefills lifts the deferral.
    if (options_.dedup_in_flight) {
      const size_t block = registry_->options().block_tokens;
      const uint64_t key = PrefixRegistry::ChainKey(prompt, cap, block);
      const size_t shareable = (cap / block) * block;
      const auto& attached = head->prefix_attachment();
      const size_t covered = attached == nullptr ? 0 : attached->use_tokens;
      if (key != 0 && covered < shareable) {
        auto it = pending_prefills_.find(key);
        if (it != pending_prefills_.end()) {
          ++stats_.prefix_dedup_deferrals;
          obs::MetricsRegistry::Add(obs::Counter::kPrefixDedupDeferrals);
          obs::Tracer::Instant("serve", "dedup.defer", "session", head->id());
          // Release the partial attachment while waiting (same reasoning as
          // the failed-charge path below: a held chain pins registry bytes).
          if (attached != nullptr) head->ResolvePrefix(nullptr);
          return false;
        }
        // No one is prefilling these blocks: this head becomes the
        // registered prefiller if it seats below.
        prefill_key = key;
      }
    }
  }
  // FIFO within the lane: when the head does not fit the remaining pools it
  // waits for a retirement rather than being overtaken by its own tenant's
  // smaller sessions (other tenants' lanes may still admit). Both charges
  // must land or neither (no partial reservations).
  const size_t gpu_footprint = head->gpu_footprint_bytes();
  const size_t cpu_footprint = head->cpu_footprint_bytes();
  bool charged = hierarchy_->gpu().Allocate(gpu_footprint).ok();
  if (charged && !hierarchy_->cpu().Allocate(cpu_footprint).ok()) {
    hierarchy_->gpu().Free(gpu_footprint);
    charged = false;
  }
  if (!charged) {
    obs::MetricsRegistry::Add(obs::Counter::kAdmissionChargeFailures);
    // Release the attachment while the head keeps waiting: a held segment
    // reference would keep the segment's bytes charged even after the
    // registry LRU-evicts it, letting the head pin the very bytes it needs
    // (admission live-lock). The next attempt re-resolves fresh.
    if (head->prefix_attachment() != nullptr) head->ResolvePrefix(nullptr);
    return false;
  }
  std::unique_ptr<Session> session = queue_.TryPop(lane);
  PQC_CHECK(session != nullptr);  // Single-consumer: the head cannot vanish.
  ++stats_.admitted;
  obs::MetricsRegistry::Add(obs::Counter::kSessionsAdmitted);
  obs::MetricsRegistry::Add(obs::Counter::kAdmissionCharges);
  if (obs::Tracer::Enabled()) {
    obs::Tracer::Instant(
        "serve", "admit", "session", session->id(), nullptr, 0, "tenant",
        lane.tenant.empty()
            ? nullptr
            : obs::Tracer::Global().InternString(lane.tenant));
  }
  if (prefill_key != 0) pending_prefills_[prefill_key] = session->id();
  last_admitted_lane_ = lane;
  active_.push_back(std::move(session));
  active_count_.store(active_.size(), std::memory_order_relaxed);
  return true;
}

void SessionManager::PrunePendingPrefills() {
  if (pending_prefills_.empty()) return;
  for (auto it = pending_prefills_.begin(); it != pending_prefills_.end();) {
    bool live = false;
    for (const auto& session : active_) {
      if (session != nullptr && session->id() == it->second &&
          !session->prefix_published() &&
          session->state() != SessionState::kFailed) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : pending_prefills_.erase(it);
  }
}

void SessionManager::AdmitFromQueue() {
  // Rotate across (tenant, user) lanes, starting just past the most recently
  // admitted lane, until no lane's head can be seated. FIFO order is
  // preserved within a lane; a blocked head only blocks its own lane.
  PrunePendingPrefills();
  bool progress = true;
  while (active_.size() < options_.max_sessions && progress) {
    progress = false;
    const std::vector<RequestQueue::LaneKey> lanes = queue_.Lanes();
    if (lanes.empty()) return;
    size_t start = 0;
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] == last_admitted_lane_) {
        start = i + 1;
        break;
      }
    }
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (active_.size() >= options_.max_sessions) break;
      if (TryAdmitHead(lanes[(start + i) % lanes.size()])) progress = true;
    }
  }
}

Result<SessionCheckpoint> SessionManager::SuspendSession(Session* session,
                                                         SuspendKind kind) {
  SessionCheckpoint checkpoint;
  PQC_RETURN_IF_ERROR(session->BuildCheckpoint(&checkpoint));
  // The suspend path is the retirement path — record, release the engine,
  // free both admission charges — except the state survives.
  session->RefreshEngineStats();
  SessionRecord record = RecordFor(*session);
  record.suspended = true;
  const char* kind_name = nullptr;
  switch (kind) {
    case SuspendKind::kExplicit:
      ++stats_.suspended;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsSuspended);
      kind_name = "explicit";
      break;
    case SuspendKind::kPreempt:
      record.preempted = true;
      ++stats_.preempted;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsPreempted);
      kind_name = "preempt";
      break;
    case SuspendKind::kPressure:
      record.pressure_suspended = true;
      ++stats_.pressure_suspended;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsPressureSuspended);
      kind_name = "pressure";
      break;
  }
  obs::Tracer::Instant("serve", "suspend", "session", session->id(), nullptr,
                       0, "kind", kind_name);
  stats_.total_generated_tokens += session->generated().size();
  session->ReleaseEngine();
  hierarchy_->gpu().Free(session->gpu_footprint_bytes());
  hierarchy_->cpu().Free(session->cpu_footprint_bytes());
  AppendRecord(std::move(record));
  return checkpoint;
}

void SessionManager::RequeueVictim(Session* victim,
                                   SessionCheckpoint checkpoint) {
  // Auto-requeue the victim's resume: same identity (carried in the
  // checkpoint), same streaming callback, cumulative token indexes.
  // The push bypasses the capacity bound — the session was already admitted
  // once, and dropping it here would lose its only copy.
  const size_t gpu_footprint = PQCacheEngine::EstimateGpuFootprintBytes(
      options_.engine, checkpoint.prompt.size(), checkpoint.max_new_tokens);
  const size_t cpu_footprint = PQCacheEngine::EstimateCpuFootprintBytes(
      options_.engine, checkpoint.prompt.size(), checkpoint.max_new_tokens);
  const int64_t old_id = victim->id();
  int64_t new_id = 0;
  {
    MutexLock lock(submit_mu_);
    // Counted like an internal Resume so the counter algebra stays intact:
    // every admitted session was submitted, and every resumed-flagged
    // record has a matching resumed count.
    ++stats_.submitted;
    ++stats_.resumed;
    new_id = next_id_++;
    auto resume = std::make_unique<Session>(
        new_id, std::move(checkpoint), victim->TakeOnToken(), options_.engine,
        gpu_footprint, cpu_footprint);
    resume->ConfigureRetry(options_.max_transient_retries,
                           options_.retry_backoff_seconds);
    queue_.PushUnbounded(std::move(resume));
  }
  // Outside submit_mu_: the hook may call back into the manager.
  if (options_.on_requeue) options_.on_requeue(old_id, new_id);
  for (auto& session : active_) {
    if (session.get() == victim) session.reset();
  }
  active_.erase(std::remove(active_.begin(), active_.end(), nullptr),
                active_.end());
  active_count_.store(active_.size(), std::memory_order_relaxed);
}

void SessionManager::ShedExpired() {
  // Only never-admitted submissions are ever shed: an auto-requeued resume
  // has resumed() == true and carries no deadline, and a checkpoint is the
  // only copy of its session — shedding one would lose work, not shed load.
  auto expired = queue_.ExtractIf([](const Session& s) {
    const double deadline = s.request().queue_deadline_seconds;
    return !s.resumed() && deadline > 0 && s.waited_seconds() > deadline;
  });
  for (const auto& session : expired) {
    SessionRecord record = RecordFor(*session);
    record.shed = true;
    record.error_code = StatusCode::kDeadlineExceeded;
    record.error =
        Status::DeadlineExceeded(
            "queue deadline (" +
            std::to_string(session->request().queue_deadline_seconds) +
            "s) expired after " + std::to_string(session->waited_seconds()) +
            "s waiting for admission")
            .ToString();
    ++stats_.shed_deadline;
    obs::MetricsRegistry::Add(obs::Counter::kSessionsShed);
    obs::Tracer::Instant("serve", "shed", "session", session->id());
    AppendRecord(std::move(record));
    // Never admitted: no engine exists and no pool bytes were ever charged,
    // so dropping the session frees everything it holds.
  }
}

void SessionManager::MaybePreempt() {
  if (options_.preempt_after_seconds <= 0 || active_.empty()) return;
  // The most overdue queued head with the highest priority. Only lane heads
  // qualify: preempting for a non-head would reorder a lane's own FIFO.
  Session* waiter = nullptr;
  RequestQueue::LaneKey waiter_lane;
  for (const RequestQueue::LaneKey& lane : queue_.Lanes()) {
    Session* head = queue_.PeekHead(lane);
    if (head == nullptr ||
        head->waited_seconds() <= options_.preempt_after_seconds) {
      continue;
    }
    if (waiter == nullptr || head->priority() > waiter->priority() ||
        (head->priority() == waiter->priority() &&
         head->waited_seconds() > waiter->waited_seconds())) {
      waiter = head;
      waiter_lane = lane;
    }
  }
  if (waiter == nullptr) return;
  // Victim: the longest-running decode of the lowest strictly-lower
  // priority. Sessions still in their first (prefill) step cannot be
  // checkpointed and are skipped.
  Session* victim = nullptr;
  for (const auto& session : active_) {
    if (session->priority() >= waiter->priority()) continue;
    if (session->state() != SessionState::kDecoding) continue;
    if (victim == nullptr || session->priority() < victim->priority() ||
        (session->priority() == victim->priority() &&
         session->generated().size() > victim->generated().size())) {
      victim = session.get();
    }
  }
  if (victim == nullptr) return;
  auto checkpoint = SuspendSession(victim, SuspendKind::kPreempt);
  if (!checkpoint.ok()) return;  // Retry at the next round boundary.
  RequeueVictim(victim, std::move(checkpoint).value());
  // Hand the freed slot and bytes to the waiter before anything else can
  // claim them (best-effort: a waiter needing more than one victim's worth
  // of memory is retried — and may preempt again — next round).
  TryAdmitHead(waiter_lane);
}

void SessionManager::MaybePressureSuspend() {
  if (options_.pressure_suspend_after_seconds <= 0 || active_.empty()) return;
  // The most overdue queued head, any priority: this is the degradation
  // path for memory pressure, not a fairness mechanism — a head the
  // preceding AdmitFromQueue could not seat has been starved of *bytes* (or
  // a slot), and which tenant it belongs to does not change that.
  Session* waiter = nullptr;
  RequestQueue::LaneKey waiter_lane;
  for (const RequestQueue::LaneKey& lane : queue_.Lanes()) {
    Session* head = queue_.PeekHead(lane);
    if (head == nullptr ||
        head->waited_seconds() <= options_.pressure_suspend_after_seconds) {
      continue;
    }
    if (waiter == nullptr ||
        head->waited_seconds() > waiter->waited_seconds()) {
      waiter = head;
      waiter_lane = lane;
    }
  }
  if (waiter == nullptr) return;
  // Victim: the lowest-priority active decode, longest-running among ties —
  // the cheapest session to park, and its progress is loss-free behind the
  // checkpoint. Sessions still in their first (prefill) step cannot be
  // checkpointed and are skipped.
  Session* victim = nullptr;
  for (const auto& session : active_) {
    if (session->state() != SessionState::kDecoding) continue;
    if (victim == nullptr || session->priority() < victim->priority() ||
        (session->priority() == victim->priority() &&
         session->generated().size() > victim->generated().size())) {
      victim = session.get();
    }
  }
  if (victim == nullptr) return;
  auto checkpoint = SuspendSession(victim, SuspendKind::kPressure);
  if (!checkpoint.ok()) return;  // Retry at the next round boundary.
  RequeueVictim(victim, std::move(checkpoint).value());
  // Best-effort, one degradation per round: a waiter needing more than one
  // victim's worth of bytes stays queued and triggers again next round.
  TryAdmitHead(waiter_lane);
}

void SessionManager::RunRound() {
  // Hierarchical weighted deficit-round-robin step selection. Budget = one
  // step per active session (the legacy round size). Outer level: each
  // tenant banks weight/sum-of-tenant-weights of the budget and spends whole
  // steps. Inner level: a tenant's grant is split across its users
  // proportional to user_weight/sum-of-user-weights, each user spending its
  // floor round-robin over its own sessions. Deficit a group cannot spend on
  // its own sessions is dropped (classic DRR: an under-loaded lane does not
  // bank credit), so a backlog never converts idle rounds into a later
  // burst; fractional shares bank across rounds in the deficit counters.
  std::vector<size_t> selected;
  struct UserGroup {
    const std::string* user;
    std::vector<size_t> indices;
    uint32_t weight = 1;
  };
  struct Group {
    const std::string* tenant;
    std::vector<UserGroup> users;
    size_t sessions = 0;
    uint32_t weight = 1;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < active_.size(); ++i) {
    Group* group = nullptr;
    for (Group& g : groups) {
      if (*g.tenant == active_[i]->tenant()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{&active_[i]->tenant(), {}, 0, 1});
      group = &groups.back();
    }
    UserGroup* ugroup = nullptr;
    for (UserGroup& u : group->users) {
      if (*u.user == active_[i]->user()) {
        ugroup = &u;
        break;
      }
    }
    if (ugroup == nullptr) {
      group->users.push_back(UserGroup{&active_[i]->user(), {}, 1});
      ugroup = &group->users.back();
    }
    ugroup->indices.push_back(i);
    ugroup->weight = std::max(ugroup->weight, active_[i]->user_weight());
    ++group->sessions;
    group->weight = std::max(group->weight, active_[i]->weight());
  }
  // Inner-DRR key of one (tenant, user) pair; the \x1f separator keeps
  // ("a", "bc") distinct from ("ab", "c").
  auto user_key = [](const Group& g, const UserGroup& u) {
    std::string key = *g.tenant;
    key.push_back('\x1f');
    key += *u.user;
    return key;
  };
  if (groups.size() <= 1 &&
      (groups.empty() || groups.front().users.size() <= 1)) {
    // Single tenant, single user: every session steps every round, exactly
    // the legacy scheduler (and no deficit state to carry).
    tenant_sched_.clear();
    user_sched_.clear();
    selected.resize(active_.size());
    for (size_t i = 0; i < active_.size(); ++i) selected[i] = i;
  } else {
    // Drop scheduler state for groups with no active sessions (classic DRR
    // resets an emptied lane's deficit) so a long-lived server does not
    // accumulate one entry per identity ever scheduled.
    for (auto it = tenant_sched_.begin(); it != tenant_sched_.end();) {
      bool live = false;
      for (const Group& g : groups) {
        if (*g.tenant == it->first) {
          live = true;
          break;
        }
      }
      it = live ? std::next(it) : tenant_sched_.erase(it);
    }
    for (auto it = user_sched_.begin(); it != user_sched_.end();) {
      bool live = false;
      for (const Group& g : groups) {
        for (const UserGroup& u : g.users) {
          if (user_key(g, u) == it->first) {
            live = true;
            break;
          }
        }
        if (live) break;
      }
      it = live ? std::next(it) : user_sched_.erase(it);
    }
    // Spends `grant` whole steps inside one user group, round-robin from its
    // banked cursor.
    auto spend = [&selected](UserGroup& u, DrrSched& sched, size_t grant) {
      for (size_t j = 0; j < grant; ++j) {
        selected.push_back(u.indices[(sched.cursor + j) % u.indices.size()]);
      }
      sched.cursor = (sched.cursor + grant) % u.indices.size();
    };
    double sum_weights = 0;
    for (const Group& g : groups) sum_weights += g.weight;
    const double budget = static_cast<double>(active_.size());
    for (Group& g : groups) {
      DrrSched& sched = tenant_sched_[*g.tenant];
      sched.deficit += budget * static_cast<double>(g.weight) / sum_weights;
      size_t grant = static_cast<size_t>(sched.deficit);
      if (grant >= g.sessions) {
        grant = g.sessions;
        sched.deficit = 0;
      } else {
        sched.deficit -= static_cast<double>(grant);
      }
      if (grant == 0) continue;
      if (g.users.size() == 1) {
        // Single user: the tenant's grant is the user's grant.
        spend(g.users.front(), user_sched_[user_key(g, g.users.front())],
              grant);
        continue;
      }
      // Inner DRR: split the tenant's grant across its users by user_weight,
      // banking fractional shares per user across rounds.
      double sum_user_weights = 0;
      for (const UserGroup& u : g.users) sum_user_weights += u.weight;
      size_t spent = 0;
      for (UserGroup& u : g.users) {
        DrrSched& usched = user_sched_[user_key(g, u)];
        usched.deficit += static_cast<double>(grant) *
                          static_cast<double>(u.weight) / sum_user_weights;
        size_t ugrant = static_cast<size_t>(usched.deficit);
        ugrant = std::min(ugrant, grant - spent);
        if (ugrant >= u.indices.size()) {
          ugrant = std::min(u.indices.size(), grant - spent);
          usched.deficit = 0;
        } else {
          usched.deficit -= static_cast<double>(ugrant);
        }
        spend(u, usched, ugrant);
        spent += ugrant;
      }
      // Within-tenant progress guard: a granted tenant must step. Give the
      // user with the largest banked deficit one step.
      if (spent == 0) {
        UserGroup* starved = nullptr;
        double best = -1;
        for (UserGroup& u : g.users) {
          const double deficit = user_sched_[user_key(g, u)].deficit;
          if (deficit > best) {
            best = deficit;
            starved = &u;
          }
        }
        DrrSched& usched = user_sched_[user_key(g, *starved)];
        spend(*starved, usched, 1);
        usched.deficit = std::max(0.0, usched.deficit - 1.0);
      }
    }
    // All-floors-zero guard: a round must make progress. Grant one step to
    // the tenant with the largest banked deficit (routed to its
    // largest-deficit user).
    if (selected.empty()) {
      Group* starved = nullptr;
      double best = -1;
      for (Group& g : groups) {
        const double deficit = tenant_sched_[*g.tenant].deficit;
        if (deficit > best) {
          best = deficit;
          starved = &g;
        }
      }
      UserGroup* starved_user = nullptr;
      double ubest = -1;
      for (UserGroup& u : starved->users) {
        const double deficit = user_sched_[user_key(*starved, u)].deficit;
        if (deficit > ubest) {
          ubest = deficit;
          starved_user = &u;
        }
      }
      DrrSched& usched = user_sched_[user_key(*starved, *starved_user)];
      spend(*starved_user, usched, 1);
      usched.deficit = std::max(0.0, usched.deficit - 1.0);
      DrrSched& sched = tenant_sched_[*starved->tenant];
      sched.deficit = std::max(0.0, sched.deficit - 1.0);
    }
  }
  auto step = [this, &selected](size_t i) { active_[selected[i]]->Step(); };
  if (options_.pool != nullptr && selected.size() > 1) {
    ParallelFor(*options_.pool, 0, selected.size(), step);
  } else {
    for (size_t i = 0; i < selected.size(); ++i) step(i);
  }
}

SessionRecord SessionManager::RecordFor(const Session& session) const {
  SessionRecord record;
  record.id = session.id();
  record.tag = session.request().tag;
  record.tenant = session.tenant();
  record.user = session.user();
  record.prompt_tokens = session.request().prompt.size();
  record.generated_tokens = session.generated().size();
  record.resumed = session.resumed();
  record.gpu_footprint_bytes = session.gpu_footprint_bytes();
  record.queue_wait_seconds = session.queue_wait_seconds();
  record.ttft_seconds = session.ttft_seconds();
  record.step_seconds = session.step_seconds();
  record.step_retries = session.retries_used();
  if (session.engine() != nullptr) {
    record.cache_token_lookups = session.engine()->stats().cache.token_lookups;
    record.cache_token_hits = session.engine()->stats().cache.token_hits;
    record.prefill_seconds = session.engine()->stats().prefill_wall_seconds;
    record.prefix_shared_tokens =
        session.engine()->stats().prefix_shared_tokens;
  }
  return record;
}

void SessionManager::ProcessSuspensions() {
  std::vector<int64_t> requested;
  {
    MutexLock lock(suspend_mu_);
    if (suspend_requests_.empty()) return;
    requested = suspend_requests_;
  }
  auto drop_request = [this](int64_t id) {
    MutexLock lock(suspend_mu_);
    suspend_requests_.erase(std::remove(suspend_requests_.begin(),
                                        suspend_requests_.end(), id),
                            suspend_requests_.end());
  };
  for (auto& session : active_) {
    const int64_t id = session->id();
    if (std::find(requested.begin(), requested.end(), id) == requested.end()) {
      continue;
    }
    if (session->done()) {
      // Finished (or failed) before the request was processed: retire
      // normally, nothing left to suspend.
      drop_request(id);
      continue;
    }
    auto checkpoint = SuspendSession(session.get(), SuspendKind::kExplicit);
    if (!checkpoint.ok()) {
      // Typically a session still in its first (prefill) step; keep the
      // request pending and try again next round.
      continue;
    }
    // Unlike a preemption (which auto-requeues), an explicit suspend parks
    // the state in suspended_ for TakeSuspended.
    {
      MutexLock lock(suspend_mu_);
      suspended_[id] = std::move(checkpoint).value();
    }
    drop_request(id);
    session.reset();
  }
  active_.erase(std::remove(active_.begin(), active_.end(), nullptr),
                active_.end());
  active_count_.store(active_.size(), std::memory_order_relaxed);

  // Drop requests whose target exists nowhere anymore — retired between the
  // request and this round, or never a real session id. They can never be
  // served (ids are unique, so no future session reuses them), and leaving
  // them would grow suspend_requests_ without bound. Requests for sessions
  // still active (checkpoint not yet possible) or still queued stay pending.
  for (int64_t id : requested) {
    bool live = queue_.Contains(id);
    for (const auto& session : active_) {
      if (session->id() == id) {
        live = true;
        break;
      }
    }
    if (!live) drop_request(id);
  }
}

void SessionManager::DispatchAndRetire() {
  for (auto& session : active_) session->DispatchNewTokens();
  // Suspensions run after dispatch (an on_token callback this round may have
  // requested one) and before retirement.
  ProcessSuspensions();
  for (auto& session : active_) {
    // Publish freshly prefilled prompts so later admissions can share them.
    // Runs on the scheduler thread between rounds; the registry dedupes
    // prefixes that are already covered. Resumed sessions never publish
    // (mirroring the attach-side guard in TryAdmitHead): their restored
    // state was flattened at save, so a republished segment would not carry
    // the deterministic prefill-time span structure later attachers expect.
    if (registry_ != nullptr && !session->resumed() &&
        !session->prefix_published() && session->engine() != nullptr &&
        session->state() != SessionState::kFailed) {
      session->set_prefix_published();
      // Chaos point at the dedup publish boundary: an injected failure here
      // models a prefiller that dies after prefilling but before its chain
      // lands, so deferred waiters must fall back to self-prefilling (the
      // pending registration is pruned because prefix_published is now set).
      Status published = Status::OK();
      if (FaultInjection::Enabled()) {
        published = FaultInjection::Global().Check("serve.prefix_publish");
      }
      if (published.ok()) {
        // Extension publish: hand the registry the deepest node this session
        // attached, so only blocks past the attached chain are copied.
        const auto& attached = session->prefix_attachment();
        published = registry_->Publish(
            attached == nullptr ? nullptr : attached->deepest(),
            session->request().prompt, *session->engine());
      }
      if (!published.ok()) {
        PQC_LOG(Warning) << "prefix publish failed for session "
                         << session->id() << ": " << published.ToString();
      }
    }
  }
  for (auto& session : active_) {
    if (!session->done()) continue;
    // Roll up the engine's final block-cache counters before recording: a
    // session that failed mid-step (or generated only its prefill token)
    // would otherwise report counters that are stale by up to one step.
    session->RefreshEngineStats();
    SessionRecord record = RecordFor(*session);
    record.failed = session->state() == SessionState::kFailed;
    if (record.failed) {
      record.error = session->error().ToString();
      record.error_code = session->error().code();
      ++stats_.failed;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsFailed);
    } else {
      ++stats_.completed;
      obs::MetricsRegistry::Add(obs::Counter::kSessionsCompleted);
    }
    stats_.total_generated_tokens += session->generated().size();
    session->ReleaseEngine();
    hierarchy_->gpu().Free(session->gpu_footprint_bytes());
    hierarchy_->cpu().Free(session->cpu_footprint_bytes());
    session.reset();
    AppendRecord(std::move(record));
  }
  active_.erase(std::remove(active_.begin(), active_.end(), nullptr),
                active_.end());
  active_count_.store(active_.size(), std::memory_order_relaxed);
}

Status SessionManager::RunUntilDrained() {
  WallTimer timer;
  // Observability for the drain: arm the tracer when a trace path is
  // configured (leaving arming alone if the caller armed it first, so an
  // outer harness can trace across several drains), and export trace +
  // final metrics snapshot on every exit path via the flusher below.
  const bool arm_tracer =
      !options_.trace_path.empty() && !obs::Tracer::Enabled();
  if (arm_tracer) obs::Tracer::Global().Start();
  // Elapsed time and the pool peak must land in stats_ even when a throwing
  // on_token callback aborts the drain mid-run: the work already done counts
  // toward throughput when the caller resumes per the header contract.
  struct StatsFlusher {
    SessionManager* manager;
    WallTimer* timer;
    bool disarm_tracer;
    ~StatsFlusher() {
      manager->stats_.wall_seconds += timer->ElapsedSeconds();
      // By here every worker has quiesced (RunRound's ParallelFor joins
      // before returning), so the export sees a consistent event set.
      if (disarm_tracer) obs::Tracer::Global().Stop();
      if (!manager->options_.trace_path.empty()) {
        Status exported = obs::Tracer::Global().ExportChromeTrace(
            manager->options_.trace_path);
        if (!exported.ok()) {
          PQC_LOG(Warning) << "trace export failed: " << exported.ToString();
        }
      }
      if (!manager->options_.metrics_path.empty()) {
        Status written = obs::MetricsRegistry::Global().WriteSnapshotJson(
            manager->options_.metrics_path);
        if (!written.ok()) {
          PQC_LOG(Warning) << "metrics snapshot failed: "
                           << written.ToString();
        }
      }
      // The pool tracks its exact peak at every Allocate; don't sample a
      // copy.
      manager->stats_.peak_gpu_bytes =
          manager->hierarchy_->gpu().peak_bytes();
      if (manager->registry_ != nullptr) {
        const PrefixRegistry::Stats prefix = manager->registry_->stats();
        manager->stats_.prefix_lookups = prefix.lookups;
        manager->stats_.prefix_hits = prefix.hits;
        manager->stats_.prefix_reused_tokens = prefix.reused_tokens;
        manager->stats_.prefix_reused_bytes = prefix.reused_bytes;
        manager->stats_.prefix_extended_publishes = prefix.extended_publishes;
        manager->stats_.prefix_nodes = prefix.nodes;
        manager->stats_.prefix_resident_gpu_bytes = prefix.resident_gpu_bytes;
        manager->stats_.prefix_resident_cpu_bytes = prefix.resident_cpu_bytes;
      }
    }
  } flusher{this, &timer, arm_tracer};
  uint64_t round = 0;
  double last_snapshot_seconds = 0;
  for (;;) {
    // Shed expired queued requests first: an expired head must not consume
    // the admission pass (or a pressure suspension) it can no longer use.
    ShedExpired();
    // Cancellations next, for the same reason: a cancelled queued request
    // must not be admitted, and a cancelled active session frees its seat
    // before this round's admission pass.
    ProcessCancellations();
    AdmitFromQueue();
    // Preemption runs at the round boundary, after admission had its
    // chance: if a higher-priority head is still waiting past its bound, a
    // lower-priority decode is checkpointed out and the head seated.
    MaybePreempt();
    // Overload degradation after preemption: preemption serves priority
    // inversions, this serves raw memory starvation (any priority).
    MaybePressureSuspend();
    stats_.peak_active_sessions =
        std::max(stats_.peak_active_sessions, active_.size());
    if (active_.empty()) {
      if (queue_.empty()) break;
      // Queue non-empty with zero active sessions: a Submit raced in after
      // this round's AdmitFromQueue. With the server empty every charge is
      // released and Submit bounds footprints by pool capacity, so the next
      // admission pass is guaranteed to make progress — retry, don't error.
      continue;
    }
    obs::MetricsRegistry::Add(obs::Counter::kServeRounds);
    obs::MetricsRegistry::SetGauge(obs::Gauge::kActiveSessions,
                                   static_cast<int64_t>(active_.size()));
    obs::MetricsRegistry::SetGauge(obs::Gauge::kQueuedSessions,
                                   static_cast<int64_t>(queue_.size()));
    {
      obs::TraceSpan round_span("serve", "serve.round");
      round_span.Arg("round", static_cast<int64_t>(round));
      round_span.Arg("active", static_cast<int64_t>(active_.size()));
      RunRound();
    }
    ++round;
    DispatchAndRetire();
    if (!options_.metrics_path.empty() &&
        options_.metrics_snapshot_interval_seconds > 0) {
      const double now = timer.ElapsedSeconds();
      if (now - last_snapshot_seconds >=
          options_.metrics_snapshot_interval_seconds) {
        last_snapshot_seconds = now;
        Status written =
            obs::MetricsRegistry::Global().WriteSnapshotJson(options_.metrics_path);
        if (!written.ok()) {
          PQC_LOG(Warning) << "metrics snapshot failed: "
                           << written.ToString();
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace pqcache

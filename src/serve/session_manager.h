// Multi-session serving: admission control against the shared GPU pool plus
// a continuous-batching scheduler that interleaves prefill and decode steps
// across ready sessions on the thread pool.
//
// Memory model. Every session is charged a-priori footprints on BOTH tiers
// of one shared MemoryHierarchy: GPU (EstimateGpuFootprintBytes: pinned KV
// segments + PQ codebooks/codes + block-cache capacity) and CPU
// (EstimateCpuFootprintBytes: offloaded middle KV at the final sequence
// length) — proven upper bounds on actual usage. Submit rejects outright
// when either footprint can never fit its pool; otherwise the session waits
// in a bounded queue (per-(tenant, user) FIFO lanes) and is admitted only when a
// decode slot is free AND both pools' remaining bytes cover its footprints
// (charged atomically: both or neither). Charges return to the pools when
// the session retires. Engines never allocate from the shared pools
// themselves, so an admitted session's prefill cannot OOM.
//
// Scheduling. Each scheduler round runs one step for each session selected
// by the weighted fair scheduler — a step is either "create engine +
// prefill" (first step after admission) or "decode one token". Steps of
// different sessions touch disjoint engines, so a round executes them in
// parallel on the thread pool; within a session, steps are strictly
// sequential. Selection is hierarchical weighted deficit-round-robin
// (RequestIdentity): per round every tenant banks steps proportional to its
// weight, and each tenant's grant is split across its users proportional to
// their user_weights, spent round-robin over each user's active sessions —
// so one tenant with many long decodes cannot monopolize the decode slots,
// and one user cannot monopolize its tenant's share; with a single tenant
// and user (the default) every active session steps every round, exactly the
// legacy behavior. Admission rotates across
// (tenant, user) lanes (FIFO within a lane) between rounds, so prefills of freshly
// admitted sessions interleave with decodes of running ones (continuous
// batching), and a higher-priority tenant waiting past
// ServeOptions::preempt_after_seconds preempts the longest-running
// lower-priority decode via the loss-free checkpoint/suspend path (the
// preempted session's resume is auto-requeued; its tokens stay
// bit-identical). Streaming callbacks fire on the scheduler thread after
// each round, in session-admission order — fully deterministic.
//
// Determinism. Sessions own disjoint PQCacheEngines and a step runs on one
// thread at a time, so generated tokens are bit-identical to running the
// same request through a single engine in isolation (unit-tested).
//
// Fault tolerance. Failures are isolated per session: a step that returns
// non-OK (or throws — exceptions are caught at the step and streaming-
// callback boundaries) retires only that session with a `failed` record
// carrying the Status; every other session, and the drain itself, continue
// untouched and bit-identical. Transient failures (Unavailable /
// OutOfMemory) get a bounded exponential-backoff retry before the session
// is failed. Overload is handled by shedding queued requests whose
// ServeRequest::queue_deadline_seconds expired (DeadlineExceeded, at round
// boundaries) and, under memory pressure, by checkpoint-suspending the
// lowest-priority active session so the starved admission head can seat
// (ServeOptions::pressure_suspend_after_seconds).
#ifndef PQCACHE_SERVE_SESSION_MANAGER_H_
#define PQCACHE_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/threadpool.h"
#include "src/core/pqcache_engine.h"
#include "src/memory/hierarchy.h"
#include "src/serve/request_queue.h"
#include "src/serve/server_stats.h"
#include "src/serve/session.h"

namespace pqcache {

/// Serving configuration. Grouped by concern: capacity & scheduling,
/// preemption & overload degradation, transient-failure retry, prefix
/// sharing, observability, and frontend hooks. Every knob documents its
/// units, default, and how it interacts with preemption/deadlines.
struct ServeOptions {
  // --- Capacity & scheduling ---

  /// Per-session engine template. `hardware` describes the *shared* server;
  /// `pool`, `shared_hierarchy` and (per session) `prefix` are overwritten
  /// by the manager.
  PQCacheEngineOptions engine;
  /// Maximum sessions decoding concurrently (decode slots). Default 8.
  size_t max_sessions = 8;
  /// Bounded request-queue capacity (sessions, across all tenant lanes);
  /// Submit rejects beyond this with FailedPrecondition. Default 64.
  size_t max_queue = 64;
  /// Worker pool for session steps and K-Means (nullptr = serial).
  ThreadPool* pool = nullptr;

  // --- Preemption & overload degradation (seconds; 0 disables) ---

  /// Checkpoint-based decode preemption (multi-tenant fairness): when a
  /// queued session of a strictly higher priority has waited longer than
  /// this bound (seconds), the scheduler suspends the longest-running
  /// lowest-priority active decode at the round boundary — checkpoint, free
  /// both charges, auto-requeue its resume — and hands the freed slot and
  /// bytes to the waiter. Loss-free and bit-identical by construction (the
  /// resume restores the full decode state). At most one preemption per
  /// round bounds the disruption. 0 disables preemption.
  double preempt_after_seconds = 0;
  /// Graceful degradation under memory pressure: when the admission head
  /// has been deferred longer than this bound (seconds) — pools too full to
  /// charge its footprints — the scheduler suspends the lowest-priority
  /// active session through the checkpoint path and auto-requeues its
  /// resume, trading one session's latency for the head's admission instead
  /// of letting the queue starve. Unlike preemption this ignores priority
  /// order (the waiter may be any priority; memory, not importance, is the
  /// bottleneck), and at most one session is degraded per round. 0 disables.
  /// Per-request queue deadlines are the third overload lever and live on
  /// the request itself (ServeRequest::queue_deadline_seconds).
  double pressure_suspend_after_seconds = 0;

  // --- Transient-failure retry ---

  /// Bounded retry of transient step failures (Unavailable / OutOfMemory):
  /// a failing step is re-attempted up to this many times per session before
  /// the session is failed. Steps fail before mutating engine state, so a
  /// retried step produces a token bit-identical to an undisturbed run.
  uint32_t max_transient_retries = 2;
  /// Base of the exponential retry backoff (seconds): attempt n waits
  /// base * 2^(n-1). Kept tiny by default — the simulated engine's faults
  /// clear immediately; real deployments would raise it.
  double retry_backoff_seconds = 0.0005;

  // --- Prefix sharing ---

  /// Cross-session prompt-prefix sharing: when enabled, every prefilled
  /// session publishes its prompt prefix to a process-wide PrefixRegistry
  /// and every admission first looks its prompt up there, attaching matched
  /// KV rows + PQ spans instead of recomputing them (tokens stay
  /// bit-identical; see src/core/prefix_registry.h). `prefix.hierarchy` is
  /// overwritten with the manager's shared hierarchy so segment bytes are
  /// charged exactly once.
  bool enable_prefix_sharing = false;
  PrefixRegistry::Options prefix;
  /// In-flight prefill deduplication (requires enable_prefix_sharing): when
  /// an admission head's shareable prefix is already being prefilled by an
  /// active session, the head is deferred (it keeps its queue position)
  /// instead of redundantly prefilling the same blocks; once the prefiller
  /// publishes, the waiter attaches the published chain. If the prefiller
  /// fails, is cancelled, or is suspended before publishing, the deferral
  /// lifts at the next round boundary and the waiter prefills for itself —
  /// deferral never deadlocks because a registered prefiller is always an
  /// active session, and the registration is dropped the moment it stops
  /// being one. Deferral events are counted in
  /// ServerStats::prefix_dedup_deferrals.
  bool dedup_in_flight = true;

  // --- Observability (empty paths disable; see src/obs) ---

  /// When non-empty, RunUntilDrained arms the span tracer for the drain and
  /// writes the accumulated events to this path as Chrome trace-event JSON
  /// (loadable in Perfetto / chrome://tracing) when the drain ends. If the
  /// tracer was already armed by the caller, the drain leaves arming alone
  /// and still exports. See src/obs/trace.h.
  std::string trace_path;
  /// When non-empty, the drain writes a MetricsRegistry JSON snapshot here —
  /// once at the end, plus every metrics_snapshot_interval_seconds during
  /// the drain when the interval is > 0 (each write atomically replaces the
  /// file, so a scraper always reads a complete snapshot).
  std::string metrics_path;
  /// Snapshot cadence (seconds) for metrics_path during a drain; 0 writes
  /// only the final snapshot.
  double metrics_snapshot_interval_seconds = 0;

  // --- Frontend hooks (scheduler thread; for transports like src/net) ---

  /// Invoked each time a SessionRecord is appended to stats() — retirement
  /// (completed/failed/cancelled), deadline shed, or suspension (explicit,
  /// preempt, pressure). Runs on the scheduler thread with no manager locks
  /// held, so the observer may call Submit/Resume/Suspend/Cancel/
  /// TakeSuspended, but must not block: the round loop waits on it. A record
  /// with `suspended` set is non-terminal (the session can come back);
  /// everything else is final for that session id.
  std::function<void(const SessionRecord&)> on_record;
  /// Invoked when a preempted or pressure-suspended victim's resume is
  /// auto-requeued under a fresh session id, so frontends routing by id can
  /// follow the session across the suspend/resume cycle. Runs on the
  /// scheduler thread, after the victim's `suspended` record was observed,
  /// with no manager locks held.
  std::function<void(int64_t old_id, int64_t new_id)> on_requeue;
};

/// Owns the shared memory hierarchy, the request queue, the active session
/// set, and the scheduler loop.
class SessionManager {
 public:
  static Result<std::unique_ptr<SessionManager>> Create(
      const ServeOptions& options);

  const ServeOptions& options() const { return options_; }
  MemoryHierarchy& hierarchy() { return *hierarchy_; }

  /// The prefix-sharing registry (nullptr when disabled).
  PrefixRegistry* prefix_registry() { return registry_.get(); }

  /// Admission gate. Rejects with OutOfMemory when either of the session's
  /// estimated footprints exceeds its whole pool (it could never run), and
  /// with FailedPrecondition when the request queue is full. Otherwise
  /// enqueues and returns the session id. Thread-safe.
  Result<int64_t> Submit(ServeRequest request);

  /// Requests suspension of a session (session checkpointing). Thread-safe;
  /// typically called from an on_token callback or another thread while
  /// RunUntilDrained is live. Processed at the next round boundary once the
  /// session is active with a live engine: the scheduler serializes the
  /// session into a SessionCheckpoint (retrievable via TakeSuspended),
  /// releases its engine, and frees its admission charges — exactly the
  /// retirement path, except the session can come back. Suspending an id
  /// that is unknown, already finished, or never admitted is a no-op.
  Status Suspend(int64_t session_id);

  /// Pops the checkpoint of a suspended session (NotFound until the
  /// scheduler has processed the Suspend request). Thread-safe.
  Result<SessionCheckpoint> TakeSuspended(int64_t session_id);

  /// Requests cancellation of a queued or active session — the per-session
  /// retirement path for "the consumer went away" (a disconnected network
  /// client). Thread-safe; processed at the next round boundary: a queued
  /// session is removed un-run, an active one is retired with its engine
  /// released and both charges freed, and either lands in stats() as a
  /// failed record carrying `reason` (reason-coded via
  /// SessionRecord::error_code, counted in ServerStats::cancelled). No other
  /// session, and never the scheduler itself, is affected. Cancelling an id
  /// that is unknown, finished, or suspended is a no-op (a parked
  /// checkpoint's owner discards it via TakeSuspended instead).
  Status Cancel(int64_t session_id, Status reason);

  /// Re-submits a suspended session. A resume is admitted like any session —
  /// same bounded queue, same a-priori footprint charges against both shared
  /// pools, same FIFO deferral under memory pressure — but its first step is
  /// one checkpoint deserialize instead of a transformer prefill, and it
  /// only generates the tokens its original budget still owes. Generated
  /// tokens are bit-identical to a never-suspended run (the engine
  /// checkpoint restores the full decode state). `on_token` receives indexes
  /// continuing from checkpoint.generated.size(). Thread-safe.
  ///
  /// The checkpoint is consumed only on success: on any rejection (invalid
  /// checkpoint, footprint over capacity, queue full) the caller's object is
  /// left intact, so a transient rejection can be retried later — the
  /// checkpoint is the only copy of the suspended session.
  Result<int64_t> Resume(
      SessionCheckpoint&& checkpoint,
      std::function<void(int32_t token, size_t index)> on_token = nullptr);

  /// Runs the scheduler until queue and active set are both empty. Admits,
  /// steps, streams, and retires sessions; returns the first scheduler-level
  /// error (session-level failures are recorded per session instead). A
  /// session Submitted concurrently with the final drain check may remain
  /// queued for the next RunUntilDrained call — a drain API cannot wait for
  /// future submissions.
  Status RunUntilDrained();

  /// Sessions currently holding decode slots. Safe from any thread (reads an
  /// atomic mirror the scheduler maintains).
  size_t active_sessions() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  size_t queued_sessions() const { return queue_.size(); }

  /// Aggregated metrics; stable once RunUntilDrained returned.
  const ServerStats& stats() const { return stats_; }

 private:
  explicit SessionManager(const ServeOptions& options);

  /// Moves lane-head sessions into the active set while a slot is free and
  /// a head's footprints fit the remaining pools, rotating across
  /// (tenant, user) lanes (FIFO within a lane) so one lane's blocked head
  /// cannot stall any other lane's admission.
  void AdmitFromQueue();
  /// One admission attempt for a lane head: resolve prefix sharing, defer if
  /// an active session is already prefilling the same prefix (in-flight
  /// dedup), charge both pools (both or neither), pop into the active set.
  /// On a failed charge the head's prefix attachment is released so it
  /// cannot pin registry node bytes between rounds (re-resolved fresh on
  /// the next attempt).
  bool TryAdmitHead(const RequestQueue::LaneKey& lane);
  /// Drops pending-prefill registrations whose publisher is no longer an
  /// active, not-yet-published session (it retired, failed, was cancelled or
  /// suspended, or already published). Runs before each admission pass so a
  /// deferral can never outlive its reason.
  void PrunePendingPrefills();
  /// Sheds queued (never-admitted) sessions whose queue_deadline_seconds
  /// expired, recording each as a DeadlineExceeded shed. Runs at the round
  /// boundary before admission so an expired head cannot block its lane.
  void ShedExpired();
  /// Retires sessions with pending Cancel requests (round boundary, before
  /// admission): queued targets are extracted un-run, active ones released;
  /// both record the cancellation reason. Unserviceable requests (unknown /
  /// already-terminal ids) are dropped.
  void ProcessCancellations();
  /// Appends a record to stats_.sessions and fires options_.on_record. Must
  /// be called with no manager locks held (the observer may call back in).
  void AppendRecord(SessionRecord record)
      PQ_EXCLUDES(submit_mu_, suspend_mu_);
  /// Suspends the longest-running lowest-priority decode when a strictly
  /// higher-priority queued head has waited past preempt_after_seconds and
  /// the preceding AdmitFromQueue could not seat it (checkpoint +
  /// auto-requeued resume), then retries that head's admission.
  void MaybePreempt();
  /// Overload degradation: when any queued head has waited past
  /// pressure_suspend_after_seconds (regardless of priority), suspends the
  /// lowest-priority active decode, auto-requeues its resume, and retries
  /// the starved head's admission. At most one degradation per round.
  void MaybePressureSuspend();
  /// Runs one step for the round's selected sessions (parallel across
  /// sessions). Selection is *hierarchical* weighted deficit-round-robin:
  /// the outer level grants each tenant steps proportional to its weight
  /// (max over its active sessions), and the inner level splits a tenant's
  /// grant across its users proportional to their user_weights, rotating
  /// within each user's sessions. A single tenant with a single user (the
  /// default) degenerates to the legacy one-step-per-session round.
  void RunRound();
  /// Why a session is being suspended — selects the record flags and the
  /// global counter the suspension lands in.
  enum class SuspendKind {
    kExplicit,  ///< Suspend() request; checkpoint parked for TakeSuspended.
    kPreempt,   ///< Fairness preemption; resume auto-requeued.
    kPressure,  ///< Overload degradation; resume auto-requeued.
  };
  /// Checkpoints `session` (which must be decoding), records it as
  /// suspended, frees its engine and charges. Returns the checkpoint or the
  /// failure.
  Result<SessionCheckpoint> SuspendSession(Session* session, SuspendKind kind);
  /// Auto-requeues a preempted/pressure-suspended victim's resume (bypassing
  /// the capacity bound — dropping it would lose the only copy) and removes
  /// the victim from the active set.
  void RequeueVictim(Session* victim, SessionCheckpoint checkpoint);
  /// Streams new tokens and retires finished/failed sessions.
  void DispatchAndRetire();
  /// Serializes + releases active sessions with pending Suspend requests
  /// (scheduler thread, between dispatch and retirement).
  void ProcessSuspensions();
  /// Final metrics snapshot of a session (shared by retire + suspend paths).
  SessionRecord RecordFor(const Session& session) const;

  ServeOptions options_;
  std::unique_ptr<MemoryHierarchy> hierarchy_;
  /// Declared after hierarchy_ (and destroyed before it): dropping the
  /// registry's retained segments releases their hierarchy charges.
  std::unique_ptr<PrefixRegistry> registry_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<Session>> active_;  // Scheduler thread only.
  std::atomic<size_t> active_count_{0};  // Mirror for cross-thread readers.
  /// Hierarchical-DRR scheduler state, scheduler thread only: banked step
  /// deficit and the rotation cursor within the group's active sessions.
  /// Kept across rounds so fractional shares accumulate. The outer map is
  /// keyed by tenant (cursor unused), the inner by "tenant\x1fuser".
  struct DrrSched {
    double deficit = 0;
    size_t cursor = 0;
  };
  std::unordered_map<std::string, DrrSched> tenant_sched_;
  std::unordered_map<std::string, DrrSched> user_sched_;
  /// Admission rotation: the next AdmitFromQueue scan starts just past the
  /// lane admitted most recently, so lanes take turns when pools are
  /// tight. Scheduler thread only.
  RequestQueue::LaneKey last_admitted_lane_;
  /// In-flight prefill dedup (scheduler thread only): block-aligned prefix
  /// key (PrefixRegistry::ChainKey) -> id of the active session prefilling
  /// it. An admission head whose key is registered to another session is
  /// deferred; entries are pruned the moment the publisher publishes or
  /// stops being active.
  std::unordered_map<uint64_t, int64_t> pending_prefills_;
  Mutex submit_mu_{LockRank::kServeSubmit};
  int64_t next_id_ PQ_GUARDED_BY(submit_mu_) = 0;
  /// Pending Suspend requests + checkpoints awaiting TakeSuspended.
  Mutex suspend_mu_{LockRank::kServeSuspend};
  std::vector<int64_t> suspend_requests_ PQ_GUARDED_BY(suspend_mu_);
  std::unordered_map<int64_t, SessionCheckpoint> suspended_
      PQ_GUARDED_BY(suspend_mu_);
  /// Pending Cancel requests (id -> reason).
  std::vector<std::pair<int64_t, Status>> cancel_requests_
      PQ_GUARDED_BY(suspend_mu_);
  /// Mixed discipline, so deliberately not PQ_GUARDED_BY: the submitted/
  /// rejected/resumed counters are mutated under submit_mu_ (Submit, Resume,
  /// RequeueVictim), every other field is written by the scheduler thread
  /// only and read after Run() returns. Each field has a single locking
  /// story, so there is no C++ memory-model race — but no single mutex
  /// covers the struct.
  ServerStats stats_;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_SESSION_MANAGER_H_

// Server-wide serving metrics: per-session records (TTFT, TPOT samples,
// queue wait, cache hits) plus admission counters and the aggregates the
// serving benchmark reports (sessions/sec, tokens/sec, TPOT percentiles).
#ifndef PQCACHE_SERVE_SERVER_STATS_H_
#define PQCACHE_SERVE_SERVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pqcache {

/// Final metrics of one retired session.
struct SessionRecord {
  int64_t id = 0;
  std::string tag;
  size_t prompt_tokens = 0;
  size_t generated_tokens = 0;
  /// Prompt positions whose KV/PQ state was attached from a shared prefix
  /// segment instead of being recomputed (0 for unshared sessions).
  size_t prefix_shared_tokens = 0;
  size_t gpu_footprint_bytes = 0;
  double queue_wait_seconds = 0;
  double ttft_seconds = 0;
  /// Engine prefill wall time (transformer forward + PQ training).
  double prefill_seconds = 0;
  /// Per-token decode latencies (one per generated token after the first).
  std::vector<double> step_seconds;
  /// Block-cache counters rolled up from the session's engine.
  uint64_t cache_token_lookups = 0;
  uint64_t cache_token_hits = 0;
  /// This session started from a SessionCheckpoint: generated_tokens counts
  /// only post-resume tokens and ttft_seconds is the resume TTFT (checkpoint
  /// deserialize + first decode step, no transformer prefill).
  bool resumed = false;
  /// This session was suspended to a checkpoint instead of finishing; its
  /// charges were released and it can be resumed later.
  bool suspended = false;
  bool failed = false;
  std::string error;

  double MeanTpotSeconds() const;
};

/// Aggregated serving metrics over one scheduler run.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Submit-time rejections: a footprint can never fit its pool (GPU or
  /// CPU).
  uint64_t rejected_capacity = 0;
  /// Submit-time rejections: the bounded request queue was full.
  uint64_t rejected_queue_full = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Sessions serialized to a SessionCheckpoint mid-run (charges released).
  uint64_t suspended = 0;
  /// Sessions submitted via Resume (also counted in `submitted`).
  uint64_t resumed = 0;

  size_t peak_active_sessions = 0;
  size_t peak_gpu_bytes = 0;
  double wall_seconds = 0;
  uint64_t total_generated_tokens = 0;
  std::vector<SessionRecord> sessions;

  /// Prefix-sharing registry counters, copied from the PrefixRegistry when
  /// the drain finishes (all zero when sharing is disabled).
  uint64_t prefix_lookups = 0;
  uint64_t prefix_hits = 0;
  uint64_t prefix_reused_tokens = 0;
  size_t prefix_segments = 0;
  size_t prefix_resident_gpu_bytes = 0;
  size_t prefix_resident_cpu_bytes = 0;

  double SessionsPerSecond() const;
  double TokensPerSecond() const;
  double MeanTtftSeconds() const;
  double MeanQueueWaitSeconds() const;
  /// Percentile (0 < p <= 100) over all sessions' pooled TPOT samples.
  double TpotPercentileSeconds(double p) const;
  /// Hit rate over all sessions' block-cache lookups. Includes retired
  /// sessions: their engines' final counters are rolled into the record at
  /// retire time.
  double AggregateCacheHitRate() const;
  /// Summed engine prefill wall seconds across all sessions (the quantity
  /// prefix sharing reduces).
  double TotalPrefillSeconds() const;
  /// Summed prefix_shared_tokens across all sessions.
  uint64_t TotalPrefixSharedTokens() const;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_SERVER_STATS_H_

// Server-wide serving metrics: per-session records (TTFT, TPOT samples,
// queue wait, cache hits) plus admission counters and the aggregates the
// serving benchmark reports (sessions/sec, tokens/sec, TPOT percentiles).
#ifndef PQCACHE_SERVE_SERVER_STATS_H_
#define PQCACHE_SERVE_SERVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pqcache {

/// Final metrics of one retired session.
struct SessionRecord {
  int64_t id = 0;
  std::string tag;
  /// Tenant lane this session was scheduled under ("" = default tenant).
  std::string tenant;
  size_t prompt_tokens = 0;
  size_t generated_tokens = 0;
  /// Prompt positions whose KV/PQ state was attached from a shared prefix
  /// segment instead of being recomputed (0 for unshared sessions).
  size_t prefix_shared_tokens = 0;
  size_t gpu_footprint_bytes = 0;
  double queue_wait_seconds = 0;
  double ttft_seconds = 0;
  /// Engine prefill wall time (transformer forward + PQ training).
  double prefill_seconds = 0;
  /// Per-token decode latencies (one per generated token after the first).
  std::vector<double> step_seconds;
  /// Block-cache counters rolled up from the session's engine.
  uint64_t cache_token_lookups = 0;
  uint64_t cache_token_hits = 0;
  /// This session started from a SessionCheckpoint: generated_tokens counts
  /// only post-resume tokens and ttft_seconds is the resume TTFT (checkpoint
  /// deserialize + first decode step, no transformer prefill).
  bool resumed = false;
  /// This session was suspended to a checkpoint instead of finishing; its
  /// charges were released and it can be resumed later.
  bool suspended = false;
  /// The suspension was a scheduler preemption (a higher-priority tenant
  /// was waiting); the session's resume was auto-requeued and produces a
  /// separate record flagged `resumed` when it retires.
  bool preempted = false;
  /// The suspension was the overload degradation path (the admission head
  /// was starved past ServeOptions::pressure_suspend_after_seconds); like a
  /// preemption, the session's resume was auto-requeued.
  bool pressure_suspended = false;
  bool failed = false;
  /// The request's queue deadline expired before admission; the session was
  /// shed un-run (no tokens, no charges) with DeadlineExceeded.
  bool shed = false;
  std::string error;
  /// Machine-readable failure reason (kOk for successful sessions). Set for
  /// failed and shed records; feeds the failure-reason breakdowns.
  StatusCode error_code = StatusCode::kOk;
  /// Transient step failures absorbed by retry before this session retired
  /// (nonzero records survived faults).
  uint32_t step_retries = 0;

  double MeanTpotSeconds() const;
};

/// Per-tenant rollup of one scheduler run's records (fair-share
/// accounting: the fields sum/pool back to the global ServerStats).
struct TenantStats {
  std::string tenant;
  uint64_t sessions = 0;   ///< Records under this tenant (incl. suspended).
  uint64_t completed = 0;  ///< Records that finished (not failed/suspended).
  uint64_t failed = 0;
  uint64_t preemptions = 0;  ///< Records suspended by the fair scheduler.
  uint64_t shed = 0;         ///< Queue-deadline sheds (never admitted).
  uint64_t pressure_suspensions = 0;  ///< Overload-degradation suspensions.
  /// Failed + shed records bucketed by their StatusCode (failure-reason
  /// breakdown; sums to failed + shed).
  std::map<StatusCode, uint64_t> failure_reasons;
  uint64_t generated_tokens = 0;
  double tokens_per_second = 0;  ///< generated_tokens over the run's wall.
  double mean_queue_wait_seconds = 0;  ///< Over token-producing records.
  double p99_queue_wait_seconds = 0;
  double p99_tpot_seconds = 0;
};

/// Aggregated serving metrics over one scheduler run.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Submit-time rejections: a footprint can never fit its pool (GPU or
  /// CPU).
  uint64_t rejected_capacity = 0;
  /// Submit-time rejections: the bounded request queue was full.
  uint64_t rejected_queue_full = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Sessions serialized to a SessionCheckpoint mid-run (charges released)
  /// on an explicit Suspend request. Scheduler preemptions are counted in
  /// `preempted` instead.
  uint64_t suspended = 0;
  /// Sessions re-entering admission from a checkpoint — an explicit Resume
  /// or a preemption's auto-requeue (also counted in `submitted`).
  uint64_t resumed = 0;
  /// Decodes suspended by the fair scheduler to unblock a higher-priority
  /// tenant; each preemption auto-requeues the session's resume.
  uint64_t preempted = 0;
  /// Queued requests shed at a round boundary because their
  /// queue_deadline_seconds expired before admission (DeadlineExceeded; no
  /// tokens were produced and no memory was ever charged).
  uint64_t shed_deadline = 0;
  /// Decodes suspended by the overload degradation path: the admission head
  /// was starved past pressure_suspend_after_seconds, so the lowest-priority
  /// active session was checkpointed and auto-requeued to free memory.
  uint64_t pressure_suspended = 0;

  size_t peak_active_sessions = 0;
  size_t peak_gpu_bytes = 0;
  double wall_seconds = 0;
  uint64_t total_generated_tokens = 0;
  std::vector<SessionRecord> sessions;

  /// Prefix-sharing registry counters, copied from the PrefixRegistry when
  /// the drain finishes (all zero when sharing is disabled).
  uint64_t prefix_lookups = 0;
  uint64_t prefix_hits = 0;
  uint64_t prefix_reused_tokens = 0;
  size_t prefix_segments = 0;
  size_t prefix_resident_gpu_bytes = 0;
  size_t prefix_resident_cpu_bytes = 0;

  double SessionsPerSecond() const;
  double TokensPerSecond() const;
  /// Means over records that produced at least one token. Records of
  /// sessions that never reached a first token (failed resumes, failed
  /// prefills) carry ttft = 0 and would skew the means toward zero exactly
  /// when failures spike, so they are excluded.
  double MeanTtftSeconds() const;
  double MeanQueueWaitSeconds() const;
  /// Percentile (0 < p <= 100) over all sessions' pooled TPOT samples.
  double TpotPercentileSeconds(double p) const;
  /// Percentile over token-producing sessions' queue waits (same exclusion
  /// rule as the means).
  double QueueWaitPercentileSeconds(double p) const;
  /// Per-tenant rollups, in first-record order. Sessions, tokens,
  /// completions, failures, preemptions, sheds and pressure suspensions sum
  /// to the global counters over the recorded sessions (unit-tested).
  std::vector<TenantStats> PerTenant() const;
  /// Failed + shed records bucketed by StatusCode across all tenants (the
  /// union of the per-tenant failure_reasons maps; counts sum to
  /// failed-records + shed-records).
  std::map<StatusCode, uint64_t> FailureReasons() const;
  /// Hit rate over all sessions' block-cache lookups. Includes retired
  /// sessions: their engines' final counters are rolled into the record at
  /// retire time.
  double AggregateCacheHitRate() const;
  /// Summed engine prefill wall seconds across all sessions (the quantity
  /// prefix sharing reduces).
  double TotalPrefillSeconds() const;
  /// Summed prefix_shared_tokens across all sessions.
  uint64_t TotalPrefixSharedTokens() const;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_SERVER_STATS_H_

// Server-wide serving metrics: per-session records (TTFT, TPOT samples,
// queue wait, cache hits) plus admission counters and the aggregates the
// serving benchmark reports (sessions/sec, tokens/sec, TPOT percentiles).
#ifndef PQCACHE_SERVE_SERVER_STATS_H_
#define PQCACHE_SERVE_SERVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pqcache {

/// Final metrics of one retired session.
struct SessionRecord {
  int64_t id = 0;
  std::string tag;
  size_t prompt_tokens = 0;
  size_t generated_tokens = 0;
  size_t gpu_footprint_bytes = 0;
  double queue_wait_seconds = 0;
  double ttft_seconds = 0;
  /// Per-token decode latencies (one per generated token after the first).
  std::vector<double> step_seconds;
  /// Block-cache counters rolled up from the session's engine.
  uint64_t cache_token_lookups = 0;
  uint64_t cache_token_hits = 0;
  bool failed = false;
  std::string error;

  double MeanTpotSeconds() const;
};

/// Aggregated serving metrics over one scheduler run.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Submit-time rejections: a footprint can never fit its pool (GPU or
  /// CPU).
  uint64_t rejected_capacity = 0;
  /// Submit-time rejections: the bounded request queue was full.
  uint64_t rejected_queue_full = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;

  size_t peak_active_sessions = 0;
  size_t peak_gpu_bytes = 0;
  double wall_seconds = 0;
  uint64_t total_generated_tokens = 0;
  std::vector<SessionRecord> sessions;

  double SessionsPerSecond() const;
  double TokensPerSecond() const;
  double MeanTtftSeconds() const;
  double MeanQueueWaitSeconds() const;
  /// Percentile (0 < p <= 100) over all sessions' pooled TPOT samples.
  double TpotPercentileSeconds(double p) const;
  /// Hit rate over all sessions' block-cache lookups.
  double AggregateCacheHitRate() const;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_SERVER_STATS_H_

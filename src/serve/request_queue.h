// Bounded admission queue of sessions, organized as per-tenant FIFO lanes.
// Submissions may arrive from any thread while the scheduler drains from its
// own, so the queue is internally synchronized. Admission order is strict
// FIFO *within* a tenant (a tenant's large head cannot be overtaken by its
// own later, smaller sessions), while the scheduler rotates *across* lanes so
// one tenant's oversized or unadmittable head never starves every other
// tenant's admission. The capacity bound is global across lanes.
#ifndef PQCACHE_SERVE_REQUEST_QUEUE_H_
#define PQCACHE_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/session.h"

namespace pqcache {

/// Mutex-guarded bounded queue of queued sessions, one FIFO lane per tenant.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  bool empty() const { return size() == 0; }

  /// Enqueues into the session's tenant lane; returns false (leaving
  /// `session` untouched) when the global capacity is reached.
  bool TryPush(std::unique_ptr<Session>& session) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ >= capacity_) return false;
    LaneFor(session->tenant()).push_back(std::move(session));
    ++size_;
    return true;
  }

  /// Enqueues ignoring the capacity bound. Only for the scheduler's
  /// preemption requeue: a preempted session was already admitted once, so
  /// the bound (which gates *new* work) must not be able to drop it.
  void PushUnbounded(std::unique_ptr<Session> session) {
    std::lock_guard<std::mutex> lock(mu_);
    LaneFor(session->tenant()).push_back(std::move(session));
    ++size_;
  }

  /// Tenants with non-empty lanes, in first-submission order. The scheduler
  /// rotates its own admission cursor over this list; the list itself is a
  /// stable snapshot (lane heads only move when the scheduler pops).
  std::vector<std::string> Tenants() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> tenants;
    tenants.reserve(lanes_.size());
    for (const Lane& lane : lanes_) {
      if (!lane.fifo.empty()) tenants.push_back(lane.tenant);
    }
    return tenants;
  }

  /// The head session of a tenant's lane, or nullptr when the lane is empty
  /// or unknown. Scheduler thread only: the pointer stays valid because only
  /// that thread pops, and it stops being valid at its own TryPop. Used to
  /// resolve prefix-sharing attachments and to evaluate preemption bounds
  /// (which need the head's prompt and wait time, not just its footprints).
  Session* PeekHead(const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Lane& lane : lanes_) {
      if (lane.tenant != tenant) continue;
      return lane.fifo.empty() ? nullptr : lane.fifo.front().get();
    }
    return nullptr;
  }

  /// True when a session with this id is queued in any lane. The scheduler
  /// uses it to drop suspend requests whose target exists nowhere anymore
  /// (retired between the request and the round boundary, or never a real
  /// id).
  bool Contains(int64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Lane& lane : lanes_) {
      for (const auto& session : lane.fifo) {
        if (session->id() == id) return true;
      }
    }
    return false;
  }

  /// Pops the head of a tenant's lane (nullptr when empty). Empty lanes are
  /// dropped so long-lived servers don't accumulate one per tenant ever
  /// seen.
  std::unique_ptr<Session> TryPop(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      if (it->tenant != tenant) continue;
      if (it->fifo.empty()) return nullptr;
      std::unique_ptr<Session> session = std::move(it->fifo.front());
      it->fifo.pop_front();
      --size_;
      if (it->fifo.empty()) lanes_.erase(it);
      return session;
    }
    return nullptr;
  }

  /// Removes every queued session matching `pred` (any lane, any position —
  /// deadline shedding must reach behind lane heads) and returns them in
  /// lane order. Emptied lanes are dropped. Scheduler thread only.
  template <typename Pred>
  std::vector<std::unique_ptr<Session>> ExtractIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::unique_ptr<Session>> extracted;
    for (auto lane = lanes_.begin(); lane != lanes_.end();) {
      for (auto it = lane->fifo.begin(); it != lane->fifo.end();) {
        if (pred(**it)) {
          extracted.push_back(std::move(*it));
          it = lane->fifo.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
      lane = lane->fifo.empty() ? lanes_.erase(lane) : std::next(lane);
    }
    return extracted;
  }

 private:
  struct Lane {
    std::string tenant;
    std::deque<std::unique_ptr<Session>> fifo;
  };

  std::deque<std::unique_ptr<Session>>& LaneFor(const std::string& tenant) {
    for (Lane& lane : lanes_) {
      if (lane.tenant == tenant) return lane.fifo;
    }
    lanes_.push_back(Lane{tenant, {}});
    return lanes_.back().fifo;
  }

  size_t capacity_;
  mutable std::mutex mu_;
  size_t size_ = 0;  ///< Total sessions across lanes.
  /// Lanes in tenant first-seen order (a list: lane erasure must not move
  /// other lanes' queued sessions; linear scans are fine at lane counts).
  std::list<Lane> lanes_;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_REQUEST_QUEUE_H_

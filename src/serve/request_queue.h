// Bounded FIFO of sessions awaiting admission. Submissions may arrive from
// any thread while the scheduler drains from its own, so the queue is
// internally synchronized. Admission order is strict FIFO: the scheduler only
// ever pops the head, so a large session cannot be starved by smaller ones
// arriving behind it (head-of-line fairness over throughput).
#ifndef PQCACHE_SERVE_REQUEST_QUEUE_H_
#define PQCACHE_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "src/serve/session.h"

namespace pqcache {

/// Mutex-guarded bounded queue of queued sessions.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  bool empty() const { return size() == 0; }

  /// Enqueues; returns false (leaving `session` untouched) when full.
  bool TryPush(std::unique_ptr<Session>& session) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(session));
    return true;
  }

  /// Footprints of the head session; false when empty. The scheduler uses
  /// these to decide whether the head fits the remaining pools before
  /// popping (the head is stable between this call and TryPop because only
  /// the scheduler thread pops).
  bool HeadFootprints(size_t* gpu_bytes, size_t* cpu_bytes) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    *gpu_bytes = queue_.front()->gpu_footprint_bytes();
    *cpu_bytes = queue_.front()->cpu_footprint_bytes();
    return true;
  }

  /// The head session, or nullptr when empty. Scheduler thread only: the
  /// pointer stays valid because only that thread pops, and it stops being
  /// valid at its own TryPop. Used to resolve prefix-sharing attachments
  /// (which need the head's prompt, not just its footprints) before
  /// charging admission.
  Session* PeekHead() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.empty() ? nullptr : queue_.front().get();
  }

  /// True when a session with this id is queued. The scheduler uses it to
  /// drop suspend requests whose target exists nowhere anymore (retired
  /// between the request and the round boundary, or never a real id).
  bool Contains(int64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& session : queue_) {
      if (session->id() == id) return true;
    }
    return false;
  }

  /// Pops the head (nullptr when empty).
  std::unique_ptr<Session> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return nullptr;
    std::unique_ptr<Session> session = std::move(queue_.front());
    queue_.pop_front();
    return session;
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Session>> queue_;
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_REQUEST_QUEUE_H_

// Bounded admission queue of sessions, organized as per-(tenant, user) FIFO
// lanes. Submissions may arrive from any thread while the scheduler drains
// from its own, so the queue is internally synchronized. Admission order is
// strict FIFO *within* a (tenant, user) lane (a user's large head cannot be
// overtaken by that same user's later, smaller sessions), while the scheduler
// rotates *across* lanes so one lane's oversized or unadmittable head never
// starves every other lane's admission — including the same tenant's other
// users. The capacity bound is global across lanes.
#ifndef PQCACHE_SERVE_REQUEST_QUEUE_H_
#define PQCACHE_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <iterator>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/serve/session.h"

namespace pqcache {

/// Mutex-guarded bounded queue of queued sessions, one FIFO lane per
/// (tenant, user) pair of the requests' RequestIdentity.
class RequestQueue {
 public:
  /// Identity key of one admission lane.
  struct LaneKey {
    std::string tenant;
    std::string user;

    bool operator==(const LaneKey&) const = default;
  };

  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  size_t size() const {
    MutexLock lock(mu_);
    return size_;
  }

  bool empty() const { return size() == 0; }

  /// Enqueues into the session's (tenant, user) lane; returns false (leaving
  /// `session` untouched) when the global capacity is reached.
  bool TryPush(std::unique_ptr<Session>& session) {
    MutexLock lock(mu_);
    if (size_ >= capacity_) return false;
    LaneFor(session->tenant(), session->user())
        .push_back(std::move(session));
    ++size_;
    return true;
  }

  /// Enqueues ignoring the capacity bound. Only for the scheduler's
  /// preemption requeue: a preempted session was already admitted once, so
  /// the bound (which gates *new* work) must not be able to drop it.
  void PushUnbounded(std::unique_ptr<Session> session) {
    MutexLock lock(mu_);
    LaneFor(session->tenant(), session->user())
        .push_back(std::move(session));
    ++size_;
  }

  /// Keys of non-empty lanes, in first-submission order. The scheduler
  /// rotates its own admission cursor over this list; the list itself is a
  /// stable snapshot (lane heads only move when the scheduler pops).
  std::vector<LaneKey> Lanes() const {
    MutexLock lock(mu_);
    std::vector<LaneKey> keys;
    keys.reserve(lanes_.size());
    for (const Lane& lane : lanes_) {
      if (!lane.fifo.empty()) keys.push_back(lane.key);
    }
    return keys;
  }

  /// The head session of a lane, or nullptr when the lane is empty or
  /// unknown. Scheduler thread only: the pointer stays valid because only
  /// that thread pops, and it stops being valid at its own TryPop. Used to
  /// resolve prefix-sharing attachments and to evaluate preemption bounds
  /// (which need the head's prompt and wait time, not just its footprints).
  Session* PeekHead(const LaneKey& key) const {
    MutexLock lock(mu_);
    for (const Lane& lane : lanes_) {
      if (lane.key != key) continue;
      return lane.fifo.empty() ? nullptr : lane.fifo.front().get();
    }
    return nullptr;
  }

  /// True when a session with this id is queued in any lane. The scheduler
  /// uses it to drop suspend requests whose target exists nowhere anymore
  /// (retired between the request and the round boundary, or never a real
  /// id).
  bool Contains(int64_t id) const {
    MutexLock lock(mu_);
    for (const Lane& lane : lanes_) {
      for (const auto& session : lane.fifo) {
        if (session->id() == id) return true;
      }
    }
    return false;
  }

  /// Pops the head of a lane (nullptr when empty). Empty lanes are dropped
  /// so long-lived servers don't accumulate one per identity ever seen.
  std::unique_ptr<Session> TryPop(const LaneKey& key) {
    MutexLock lock(mu_);
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      if (it->key != key) continue;
      if (it->fifo.empty()) return nullptr;
      std::unique_ptr<Session> session = std::move(it->fifo.front());
      it->fifo.pop_front();
      --size_;
      if (it->fifo.empty()) lanes_.erase(it);
      return session;
    }
    return nullptr;
  }

  /// Removes every queued session matching `pred` (any lane, any position —
  /// deadline shedding must reach behind lane heads) and returns them in
  /// lane order. Emptied lanes are dropped. Scheduler thread only.
  template <typename Pred>
  std::vector<std::unique_ptr<Session>> ExtractIf(Pred pred) {
    MutexLock lock(mu_);
    std::vector<std::unique_ptr<Session>> extracted;
    for (auto lane = lanes_.begin(); lane != lanes_.end();) {
      for (auto it = lane->fifo.begin(); it != lane->fifo.end();) {
        if (pred(**it)) {
          extracted.push_back(std::move(*it));
          it = lane->fifo.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
      lane = lane->fifo.empty() ? lanes_.erase(lane) : std::next(lane);
    }
    return extracted;
  }

 private:
  struct Lane {
    LaneKey key;
    std::deque<std::unique_ptr<Session>> fifo;
  };

  std::deque<std::unique_ptr<Session>>& LaneFor(const std::string& tenant,
                                                const std::string& user)
      PQ_REQUIRES(mu_) {
    for (Lane& lane : lanes_) {
      if (lane.key.tenant == tenant && lane.key.user == user) {
        return lane.fifo;
      }
    }
    lanes_.push_back(Lane{LaneKey{tenant, user}, {}});
    return lanes_.back().fifo;
  }

  size_t capacity_;
  mutable Mutex mu_{LockRank::kRequestQueue};
  size_t size_ PQ_GUARDED_BY(mu_) = 0;  ///< Total sessions across lanes.
  /// Lanes in identity first-seen order (a list: lane erasure must not move
  /// other lanes' queued sessions; linear scans are fine at lane counts).
  std::list<Lane> lanes_ PQ_GUARDED_BY(mu_);
};

}  // namespace pqcache

#endif  // PQCACHE_SERVE_REQUEST_QUEUE_H_

#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace pqcache::obs {

std::atomic<bool> Tracer::armed_{false};

namespace {

/// Thread-local handle into the tracer: valid while the generation matches.
struct TlsRef {
  uint64_t generation = 0;
  Tracer* owner = nullptr;
  void* buffer = nullptr;
};
thread_local TlsRef tls_ref;

/// Escapes a string for a JSON string literal (names are code-controlled,
/// but interned tenant tags are user data).
void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

Tracer::Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::Start() { armed_.store(true, std::memory_order_relaxed); }

void Tracer::Stop() { armed_.store(false, std::memory_order_relaxed); }

const char* Tracer::InternString(std::string_view s) {
  MutexLock lock(mu_);
  for (const std::string& existing : interned_) {
    if (existing == s) return existing.c_str();
  }
  interned_.emplace_back(s);
  return interned_.back().c_str();
}

Tracer::ThreadBuffer* Tracer::RegisterThisThread() {
  MutexLock lock(mu_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(ring_capacity_, next_tid_++));
  ThreadBuffer* buffer = buffers_.back().get();
  tls_ref.generation = generation_.load(std::memory_order_relaxed);
  tls_ref.owner = this;
  tls_ref.buffer = buffer;
  return buffer;
}

void Tracer::Emit(const TraceEvent& event) {
  ThreadBuffer* buffer = static_cast<ThreadBuffer*>(tls_ref.buffer);
  if (buffer == nullptr || tls_ref.owner != this ||
      tls_ref.generation != generation_.load(std::memory_order_relaxed)) {
    buffer = RegisterThisThread();
  }
  // Single writer per ring (the owning thread); the release on head
  // publishes the slot to the exporter's acquire load.
  const uint64_t head = buffer->head.load(std::memory_order_relaxed);
  buffer->ring[head % buffer->ring.size()] = event;
  buffer->head.store(head + 1, std::memory_order_release);
}

void Tracer::CompleteOnTrack(const char* cat, const char* name, uint64_t ts_ns,
                             uint64_t dur_ns, uint32_t track,
                             const char* arg0_name, int64_t arg0,
                             const char* str_arg_name, const char* str_arg) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.arg_name[0] = arg0_name;
  event.arg_val[0] = arg0;
  event.str_arg_name = str_arg_name;
  event.str_arg = str_arg;
  event.track = track;
  Global().Emit(event);
}

void Tracer::Instant(const char* cat, const char* name, const char* arg0_name,
                     int64_t arg0, const char* arg1_name, int64_t arg1,
                     const char* str_arg_name, const char* str_arg) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_ns = MonotonicNowNs();
  event.phase = 'i';
  event.arg_name[0] = arg0_name;
  event.arg_val[0] = arg0;
  event.arg_name[1] = arg1_name;
  event.arg_val[1] = arg1;
  event.str_arg_name = str_arg_name;
  event.str_arg = str_arg;
  Global().Emit(event);
}

uint64_t Tracer::RetainedEvents() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += std::min<uint64_t>(buffer->head.load(std::memory_order_acquire),
                                buffer->ring.size());
  }
  return total;
}

uint64_t Tracer::DroppedEvents() const {
  MutexLock lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    if (head > buffer->ring.size()) dropped += head - buffer->ring.size();
  }
  return dropped;
}

std::string Tracer::ToChromeTraceJson() const {
  // Snapshot (event, tid) pairs under the lock, then sort by timestamp so
  // the exported file is globally monotonic (bench/check_trace.py enforces
  // this) and Perfetto's slice nesting reconstructs per-thread RAII order.
  struct Row {
    TraceEvent event;
    uint32_t tid;
  };
  std::vector<Row> rows;
  {
    MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      const uint64_t head = buffer->head.load(std::memory_order_acquire);
      const uint64_t size = buffer->ring.size();
      const uint64_t n = std::min<uint64_t>(head, size);
      for (uint64_t i = head - n; i < head; ++i) {
        const TraceEvent& event = buffer->ring[i % size];
        rows.push_back(
            Row{event, event.track != 0 ? event.track : buffer->tid});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.event.ts_ns != b.event.ts_ns) return a.event.ts_ns < b.event.ts_ns;
    // Equal start: the longer span is the parent and must precede its
    // children for well-nested file order.
    return a.event.dur_ns > b.event.dur_ns;
  });

  std::string out;
  out.reserve(rows.size() * 160 + 64);
  out += "{\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const Row& row : rows) {
    const TraceEvent& ev = row.event;
    if (ev.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(out, ev.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, ev.cat != nullptr ? ev.cat : "default");
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",";
    // Microsecond timestamps with nanosecond precision.
    std::snprintf(buf, sizeof(buf), "\"ts\":%" PRIu64 ".%03u",
                  ev.ts_ns / 1000, static_cast<unsigned>(ev.ts_ns % 1000));
    out += buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%" PRIu64 ".%03u",
                    ev.dur_ns / 1000,
                    static_cast<unsigned>(ev.dur_ns % 1000));
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u", row.tid);
    out += buf;
    const bool has_args = ev.arg_name[0] != nullptr ||
                          ev.arg_name[1] != nullptr ||
                          ev.str_arg_name != nullptr;
    if (has_args) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (int i = 0; i < 2; ++i) {
        if (ev.arg_name[i] == nullptr) continue;
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        AppendJsonEscaped(out, ev.arg_name[i]);
        std::snprintf(buf, sizeof(buf), "\":%lld",
                      static_cast<long long>(ev.arg_val[i]));
        out += buf;
      }
      if (ev.str_arg_name != nullptr && ev.str_arg != nullptr) {
        if (!first_arg) out += ",";
        out += "\"";
        AppendJsonEscaped(out, ev.str_arg_name);
        out += "\":\"";
        AppendJsonEscaped(out, ev.str_arg);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("Tracer: cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) return Status::Internal("Tracer: short write to " + path);
  return Status::OK();
}

void Tracer::ResetForTesting(size_t ring_capacity_events) {
  MutexLock lock(mu_);
  if (ring_capacity_events > 0) ring_capacity_ = ring_capacity_events;
  buffers_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pqcache::obs

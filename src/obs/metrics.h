// Lock-light process-wide metrics: pre-registered counters, gauges, and
// fixed-bucket latency histograms, updated with relaxed atomics (no mutex,
// no allocation — safe on the zero-alloc decode path) and exported as a JSON
// snapshot. Pre-registration (the enums below) is what keeps updates O(1)
// array indexing instead of a name lookup; adding a metric is adding an enum
// entry plus its name string in metrics.cc.
//
// Histograms use power-of-two bucket boundaries from 100 ns up (bucket i
// covers (100ns * 2^(i-1), 100ns * 2^i]; the last bucket is +Inf), wide
// enough that queue waits, decode steps, and checkpoint round-trips all
// land mid-range. Percentiles read from a snapshot are therefore bounded to
// one bucket (a factor of two), which is what the consistency tests assert
// against ServerStats' exact percentiles.
#ifndef PQCACHE_OBS_METRICS_H_
#define PQCACHE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace pqcache::obs {

/// Monotonic event counts.
enum class Counter : int {
  kServeRounds = 0,
  kSessionsAdmitted,
  kSessionsCompleted,
  kSessionsFailed,
  kSessionsShed,
  kSessionsPreempted,
  kSessionsPressureSuspended,
  kSessionsSuspended,
  kSessionsCancelled,
  kTokensGenerated,
  kPrefills,
  kDecodeSteps,
  kStepRetries,
  kFaultsInjected,
  kCheckpointSaves,
  kCheckpointRestores,
  kPrefixLookups,
  kPrefixHits,
  kPrefixPublishes,
  kPrefixExtendedPublishes,
  kPrefixDedupDeferrals,
  kAdmissionCharges,
  kAdmissionChargeFailures,
  kKMeansSpanTrains,
  kLutBuilds,
  kGatherReduces,
  kNetConnectionsAccepted,
  kNetFramesDecoded,
  kNetFramesSent,
  kNetProtocolErrors,
  kNetBackpressureSuspends,
  kNetDisconnectCancels,
  kCount
};

/// Last-written point-in-time values. The pool gauges are written by every
/// MemoryPool named "gpu"/"cpu" (in serving, the shared hierarchy), so they
/// reflect the most recent charge or release.
enum class Gauge : int {
  kGpuUsedBytes = 0,
  kGpuPeakBytes,
  kCpuUsedBytes,
  kCpuPeakBytes,
  kActiveSessions,
  kQueuedSessions,
  kNetOpenConnections,
  kNetBufferedBytes,
  kCount
};

/// Fixed-bucket latency distributions, recorded in seconds.
enum class Histo : int {
  kQueueWaitSeconds = 0,
  kTtftSeconds,
  kPrefillSeconds,
  kDecodeStepSeconds,
  kCheckpointSaveSeconds,
  kCheckpointRestoreSeconds,
  kKMeansTrainSeconds,
  kRetryBackoffSeconds,
  kLutBuildSeconds,
  kGatherReduceSeconds,
  kCount
};

/// Bucket count: boundaries 100ns * 2^i for i in [0, 27), last bucket +Inf
/// (upper boundary of bucket 26 is ~6.7 s).
inline constexpr int kHistogramBuckets = 28;

const char* CounterName(Counter c);
const char* GaugeName(Gauge g);
const char* HistoName(Histo h);

/// Read-only copy of one histogram's cells.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_seconds = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Inclusive upper boundary of bucket i in seconds (+Inf for the last).
  static double BucketUpperBound(int i);

  /// Bounds on the p-th percentile (p in [0, 100]): the boundaries of the
  /// bucket holding the p-th sample. An exact percentile computed from the
  /// same samples always lies within [lower, upper].
  double PercentileLowerBoundSeconds(double p) const;
  double PercentileUpperBoundSeconds(double p) const;
};

/// Full registry snapshot, safe to read and serialize off the hot path.
struct MetricsSnapshot {
  std::array<uint64_t, static_cast<int>(Counter::kCount)> counters{};
  std::array<int64_t, static_cast<int>(Gauge::kCount)> gauges{};
  std::array<HistogramSnapshot, static_cast<int>(Histo::kCount)> histograms{};

  uint64_t counter(Counter c) const {
    return counters[static_cast<int>(c)];
  }
  int64_t gauge(Gauge g) const { return gauges[static_cast<int>(g)]; }
  const HistogramSnapshot& histogram(Histo h) const {
    return histograms[static_cast<int>(h)];
  }

  std::string ToJson() const;
};

/// The process-wide registry. All mutators are static, relaxed-atomic, and
/// allocation-free; snapshotting tears at most between cells (each cell is
/// individually atomic), which is the documented consistency level.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  static void Add(Counter c, uint64_t delta = 1) {
    Global().counters_[static_cast<int>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  static void SetGauge(Gauge g, int64_t value) {
    Global().gauges_[static_cast<int>(g)].store(value,
                                                std::memory_order_relaxed);
  }

  /// Records one latency sample (seconds) into `h`'s buckets.
  static void Observe(Histo h, double seconds);

  /// Kernel-level timing (LUT build / gather-reduce) costs two extra clock
  /// reads per attention scoring call, so it is armed separately from the
  /// always-on serve metrics. Disarmed cost: one relaxed load.
  static bool KernelProfilingEnabled() {
    return kernel_profiling_.load(std::memory_order_relaxed);
  }
  static void EnableKernelProfiling(bool on) {
    kernel_profiling_.store(on, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  /// Snapshot().ToJson() written to `path` (atomic enough for a periodic
  /// overwrite: written to a temp file, then renamed).
  Status WriteSnapshotJson(const std::string& path) const;

  /// Zeroes every cell (test isolation; callers must quiesce writers).
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  struct HistogramCells {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
  };

  static std::atomic<bool> kernel_profiling_;
  std::array<std::atomic<uint64_t>, static_cast<int>(Counter::kCount)>
      counters_{};
  std::array<std::atomic<int64_t>, static_cast<int>(Gauge::kCount)> gauges_{};
  std::array<HistogramCells, static_cast<int>(Histo::kCount)> histograms_{};
};

}  // namespace pqcache::obs

#endif  // PQCACHE_OBS_METRICS_H_

// Span tracer: RAII scoped spans recorded into preallocated per-thread ring
// buffers and exported as Chrome trace-event JSON that loads directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Cost model (same pattern as fault_injection.h): a disarmed span costs one
// relaxed atomic load and a predictable branch — nothing else. An armed span
// costs two clock reads plus one store into this thread's ring. Emission
// never allocates once a thread's ring exists (the ring is a fixed-capacity
// array created on the thread's first armed event), so steady-state decode
// stays zero-alloc with tracing enabled — enforced by the counting-allocator
// test in tests/engine_test.cc. When a ring fills, the oldest events are
// overwritten (newest-wins, like a flight recorder); the drop count is
// reported at export.
//
// Event names and categories must be string literals (or pointers interned
// via Tracer::InternString): events store the pointers, not copies. Spans on
// one thread nest strictly (RAII stack discipline), which the exporter and
// bench/check_trace.py rely on. Retroactive spans measured across threads
// (queue wait: enqueue happens on the submitter, admission on a worker) go
// on per-session virtual tracks via CompleteOnTrack so they cannot break
// per-thread nesting.
//
//   Tracer::Global().Start();
//   { PQC_TRACE_SPAN("engine", "engine.decode_step"); ... }
//   obs::Tracer::Instant("serve", "retry.backoff", "session", id);
//   Tracer::Global().Stop();   // after quiescing worker threads
//   Tracer::Global().ExportChromeTrace("trace.json");
#ifndef PQCACHE_OBS_TRACE_H_
#define PQCACHE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/clock.h"

namespace pqcache::obs {

/// One recorded event. Fixed-size and pointer-only so a ring slot assignment
/// is a plain store; name/cat/arg-name/str-arg pointers must outlive the
/// tracer (string literals or InternString results).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;  ///< 0 for instants.
  const char* arg_name[2] = {nullptr, nullptr};
  int64_t arg_val[2] = {0, 0};
  const char* str_arg_name = nullptr;
  const char* str_arg = nullptr;
  /// Virtual track id; 0 = the emitting thread's own track. Used for
  /// retroactive cross-thread spans (per-session queue-wait tracks).
  uint32_t track = 0;
  char phase = 'X';  ///< 'X' (complete span) or 'i' (instant).
};

/// Process-global tracer. Arm/disarm is process-wide; per-thread rings are
/// created lazily on a thread's first armed event and retained for the
/// process lifetime (so a cached thread-local pointer can never dangle).
class Tracer {
 public:
  static Tracer& Global();

  /// True when tracing is armed. Inline relaxed load: the entire cost of an
  /// instrumentation point in a disarmed process.
  static bool Enabled() { return armed_.load(std::memory_order_relaxed); }

  /// Arms event recording (idempotent). Events accumulate across
  /// Start/Stop cycles until Reset.
  void Start();

  /// Disarms recording. Call after quiescing writer threads (e.g.
  /// ThreadPool::Wait) when a consistent export is needed: a thread mid-emit
  /// at Stop may still complete its write.
  void Stop();

  /// Interns a dynamic string (e.g. a tenant name) and returns a pointer
  /// stable for the process lifetime, usable as an event's str_arg. Takes a
  /// mutex and may allocate — call off the hot path (session setup, not
  /// decode). Repeated calls with the same content return the same pointer.
  const char* InternString(std::string_view s);

  /// Records a complete span with explicit timestamps on a virtual track
  /// (see TraceEvent::track). No-op when disarmed.
  static void CompleteOnTrack(const char* cat, const char* name,
                              uint64_t ts_ns, uint64_t dur_ns, uint32_t track,
                              const char* arg0_name = nullptr,
                              int64_t arg0 = 0,
                              const char* str_arg_name = nullptr,
                              const char* str_arg = nullptr);

  /// Records an instant event on the calling thread's track. No-op when
  /// disarmed.
  static void Instant(const char* cat, const char* name,
                      const char* arg0_name = nullptr, int64_t arg0 = 0,
                      const char* arg1_name = nullptr, int64_t arg1 = 0,
                      const char* str_arg_name = nullptr,
                      const char* str_arg = nullptr);

  /// Writes the accumulated events into this thread's ring (creating the
  /// ring on first use). Callers normally go through TraceSpan / Instant.
  void Emit(const TraceEvent& event);

  /// Events currently retained across all rings / overwritten by wraparound.
  uint64_t RetainedEvents() const;
  uint64_t DroppedEvents() const;

  /// Serializes every retained event, sorted by timestamp, as Chrome
  /// trace-event JSON ({"traceEvents": [...]}).
  std::string ToChromeTraceJson() const;

  /// ToChromeTraceJson written to `path`.
  Status ExportChromeTrace(const std::string& path) const;

  /// Drops all recorded events and re-creates rings with
  /// `ring_capacity_events` slots per thread (0 keeps the current capacity).
  /// Requires no concurrent emitters (tests and setup only): live threads
  /// re-register on their next event.
  void ResetForTesting(size_t ring_capacity_events = 0);

  /// Default slots per thread ring (~1.6 MB per thread at 96 B/event).
  static constexpr size_t kDefaultRingCapacity = 16384;

 private:
  struct ThreadBuffer {
    ThreadBuffer(size_t capacity, uint32_t tid)
        : ring(capacity), tid(tid) {}
    std::vector<TraceEvent> ring;
    /// Total events ever written by the owning thread; slot = head % size.
    /// Written by the owner (release), read by the exporter (acquire).
    std::atomic<uint64_t> head{0};
    uint32_t tid;
  };

  Tracer();
  ThreadBuffer* RegisterThisThread();

  static std::atomic<bool> armed_;
  // kTracer ranks just below kLogging: Instant/Emit fire while holding any
  // subsystem lock (server, registry, fault injection), and only the lazy
  // per-thread ring registration ever takes mu_ — the emit itself is
  // lock-free against the thread's own ring.
  mutable Mutex mu_{LockRank::kTracer};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ PQ_GUARDED_BY(mu_);
  std::deque<std::string> interned_ PQ_GUARDED_BY(mu_);
  size_t ring_capacity_ PQ_GUARDED_BY(mu_) = kDefaultRingCapacity;
  uint32_t next_tid_ PQ_GUARDED_BY(mu_) = 1;
  /// Bumped by ResetForTesting so threads drop their cached buffer pointer.
  std::atomic<uint64_t> generation_{1};
};

/// RAII scoped span. Disarmed: one relaxed load in the constructor, one
/// branch in the destructor, no clock reads, no event. Armed: records a
/// complete ('X') event covering the object's lifetime.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name)
      : cat_(cat), name_(name), live_(Tracer::Enabled()) {
    if (live_) start_ns_ = MonotonicNowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (at most two; extras are dropped).
  void Arg(const char* arg_name, int64_t value) {
    if (!live_ || n_args_ >= 2) return;
    arg_name_[n_args_] = arg_name;
    arg_val_[n_args_] = value;
    ++n_args_;
  }

  /// Attaches one string argument (a literal or an InternString pointer).
  void StrArg(const char* arg_name, const char* value) {
    if (!live_ || value == nullptr) return;
    str_arg_name_ = arg_name;
    str_arg_ = value;
  }

  ~TraceSpan() {
    if (!live_) return;
    TraceEvent event;
    event.name = name_;
    event.cat = cat_;
    event.ts_ns = start_ns_;
    event.dur_ns = MonotonicNowNs() - start_ns_;
    for (int i = 0; i < n_args_; ++i) {
      event.arg_name[i] = arg_name_[i];
      event.arg_val[i] = arg_val_[i];
    }
    event.str_arg_name = str_arg_name_;
    event.str_arg = str_arg_;
    Tracer::Global().Emit(event);
  }

 private:
  const char* cat_;
  const char* name_;
  const char* arg_name_[2];
  int64_t arg_val_[2];
  const char* str_arg_name_ = nullptr;
  const char* str_arg_ = nullptr;
  uint64_t start_ns_ = 0;
  int n_args_ = 0;
  const bool live_;
};

}  // namespace pqcache::obs

#define PQC_OBS_CONCAT_INNER(a, b) a##b
#define PQC_OBS_CONCAT(a, b) PQC_OBS_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block. Free when tracing
/// is disarmed process-wide. For spans with arguments, declare a named
/// ::pqcache::obs::TraceSpan and call Arg/StrArg on it.
#define PQC_TRACE_SPAN(cat, name) \
  ::pqcache::obs::TraceSpan PQC_OBS_CONCAT(_pqc_trace_span_, __LINE__)(cat, \
                                                                       name)

#endif  // PQCACHE_OBS_TRACE_H_

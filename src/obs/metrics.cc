#include "src/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace pqcache::obs {

namespace {

/// First bucket's upper boundary: 100 ns.
constexpr double kBucketBaseSeconds = 1e-7;

const char* const kCounterNames[] = {
    "serve_rounds",
    "sessions_admitted",
    "sessions_completed",
    "sessions_failed",
    "sessions_shed",
    "sessions_preempted",
    "sessions_pressure_suspended",
    "sessions_suspended",
    "sessions_cancelled",
    "tokens_generated",
    "prefills",
    "decode_steps",
    "step_retries",
    "faults_injected",
    "checkpoint_saves",
    "checkpoint_restores",
    "prefix_lookups",
    "prefix_hits",
    "prefix_publishes",
    "prefix_extended_publishes",
    "prefix_dedup_deferrals",
    "admission_charges",
    "admission_charge_failures",
    "kmeans_span_trains",
    "lut_builds",
    "gather_reduces",
    "net_connections_accepted",
    "net_frames_decoded",
    "net_frames_sent",
    "net_protocol_errors",
    "net_backpressure_suspends",
    "net_disconnect_cancels",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              static_cast<size_t>(Counter::kCount));

const char* const kGaugeNames[] = {
    "gpu_used_bytes",   "gpu_peak_bytes",  "cpu_used_bytes",
    "cpu_peak_bytes",   "active_sessions", "queued_sessions",
    "net_open_connections", "net_buffered_bytes",
};
static_assert(sizeof(kGaugeNames) / sizeof(kGaugeNames[0]) ==
              static_cast<size_t>(Gauge::kCount));

const char* const kHistoNames[] = {
    "queue_wait_seconds",         "ttft_seconds",
    "prefill_seconds",            "decode_step_seconds",
    "checkpoint_save_seconds",    "checkpoint_restore_seconds",
    "kmeans_train_seconds",       "retry_backoff_seconds",
    "lut_build_seconds",          "gather_reduce_seconds",
};
static_assert(sizeof(kHistoNames) / sizeof(kHistoNames[0]) ==
              static_cast<size_t>(Histo::kCount));

/// Bucket index of a sample: the smallest i with seconds <= 100ns * 2^i,
/// clamped into [0, kHistogramBuckets - 1]. Branch-light (one division, one
/// ceil, one bit_width) so it is cheap enough for per-token recording.
int BucketIndex(double seconds) {
  if (!(seconds > kBucketBaseSeconds)) return 0;
  const double ratio = seconds / kBucketBaseSeconds;
  if (ratio >= static_cast<double>(1ull << (kHistogramBuckets - 1))) {
    return kHistogramBuckets - 1;
  }
  const uint64_t up = static_cast<uint64_t>(std::ceil(ratio));
  return std::min<int>(std::bit_width(up - 1), kHistogramBuckets - 1);
}

}  // namespace

std::atomic<bool> MetricsRegistry::kernel_profiling_{false};

const char* CounterName(Counter c) { return kCounterNames[static_cast<int>(c)]; }
const char* GaugeName(Gauge g) { return kGaugeNames[static_cast<int>(g)]; }
const char* HistoName(Histo h) { return kHistoNames[static_cast<int>(h)]; }

double HistogramSnapshot::BucketUpperBound(int i) {
  if (i >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kBucketBaseSeconds * static_cast<double>(1ull << i);
}

double HistogramSnapshot::PercentileLowerBoundSeconds(double p) const {
  if (count == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && seen > 0) {
      return i == 0 ? 0.0 : BucketUpperBound(i - 1);
    }
  }
  return 0;
}

double HistogramSnapshot::PercentileUpperBoundSeconds(double p) const {
  if (count == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && seen > 0) return BucketUpperBound(i);
  }
  return BucketUpperBound(kHistogramBuckets - 1);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(4096);
  char buf[96];
  out += "{\n  \"counters\": {";
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                  i == 0 ? "" : ",", kCounterNames[i],
                  static_cast<unsigned long long>(counters[i]));
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  for (int i = 0; i < static_cast<int>(Gauge::kCount); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %lld",
                  i == 0 ? "" : ",", kGaugeNames[i],
                  static_cast<long long>(gauges[i]));
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  for (int i = 0; i < static_cast<int>(Histo::kCount); ++i) {
    const HistogramSnapshot& h = histograms[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %llu, \"sum_seconds\": %.9f, "
                  "\"buckets\": [",
                  i == 0 ? "" : ",", kHistoNames[i],
                  static_cast<unsigned long long>(h.count), h.sum_seconds);
    out += buf;
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;  // Sparse: most buckets stay empty.
      if (b == kHistogramBuckets - 1) {
        std::snprintf(buf, sizeof(buf), "%s{\"le\": \"+Inf\", \"count\": %llu}",
                      first ? "" : ", ",
                      static_cast<unsigned long long>(h.buckets[b]));
      } else {
        std::snprintf(buf, sizeof(buf), "%s{\"le\": %.9g, \"count\": %llu}",
                      first ? "" : ", ", HistogramSnapshot::BucketUpperBound(b),
                      static_cast<unsigned long long>(h.buckets[b]));
      }
      first = false;
      out += buf;
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

void MetricsRegistry::Observe(Histo h, double seconds) {
  HistogramCells& cells = Global().histograms_[static_cast<int>(h)];
  cells.buckets[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum_ns.fetch_add(
      seconds > 0 ? static_cast<uint64_t>(seconds * 1e9) : 0,
      std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    snap.counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < static_cast<int>(Gauge::kCount); ++i) {
    snap.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < static_cast<int>(Histo::kCount); ++i) {
    const HistogramCells& cells = histograms_[i];
    HistogramSnapshot& h = snap.histograms[i];
    h.count = cells.count.load(std::memory_order_relaxed);
    h.sum_seconds =
        static_cast<double>(cells.sum_ns.load(std::memory_order_relaxed)) *
        1e-9;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] = cells.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

Status MetricsRegistry::WriteSnapshotJson(const std::string& path) const {
  const std::string json = Snapshot().ToJson();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("MetricsRegistry: cannot open " + tmp);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (written != json.size() || std::fclose(f) != 0) {
    return Status::Internal("MetricsRegistry: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("MetricsRegistry: cannot rename " + tmp);
  }
  return Status::OK();
}

void MetricsRegistry::ResetForTesting() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.count.store(0, std::memory_order_relaxed);
    h.sum_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace pqcache::obs

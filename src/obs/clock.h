// The single monotonic clock behind every timing source in the repo: the
// span tracer, the metrics histograms, and WallTimer (src/common/timer.h) all
// read MonotonicNowNs(), so a span's timestamps, a histogram sample, and a
// bench-reported latency measured around the same work are directly
// comparable — one instrumentation spine, one epoch.
#ifndef PQCACHE_OBS_CLOCK_H_
#define PQCACHE_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace pqcache::obs {

/// Nanoseconds since the process trace epoch (the first call in the
/// process). Monotonic and thread-safe; the shared epoch keeps timestamps
/// small enough to print as fractional microseconds without precision loss.
inline uint64_t MonotonicNowNs() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

}  // namespace pqcache::obs

#endif  // PQCACHE_OBS_CLOCK_H_

// A growing PQ index over token keys for one (layer, head): codes plus the
// trained codebook, supporting approximate inner-product scoring of a query
// against every indexed token (Asymmetric Distance Computation) and top-k
// retrieval. This is the "PQ search on GPU" of paper Step 4.
#ifndef PQCACHE_PQ_PQ_INDEX_H_
#define PQCACHE_PQ_PQ_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/pq/codebook.h"

namespace pqcache {

/// PQ codes for a token sequence plus search over them.
class PQIndex {
 public:
  PQIndex() = default;
  explicit PQIndex(PQCodebook codebook) : codebook_(std::move(codebook)) {}

  const PQCodebook& codebook() const { return codebook_; }
  bool trained() const { return codebook_.trained(); }

  /// Number of indexed vectors.
  size_t size() const {
    const int m = codebook_.config().num_partitions;
    return m == 0 ? 0 : codes_.size() / static_cast<size_t>(m);
  }

  /// Encodes and appends `n` row-major vectors.
  void AddVectors(std::span<const float> vecs, size_t n);

  /// Appends pre-computed codes for `n` vectors (n * m entries).
  void AddCodes(std::span<const uint16_t> codes, size_t n);

  /// Encodes and appends a single vector (an evicted local token).
  void AddVector(std::span<const float> vec);

  /// Raw code matrix, row-major [size, m].
  std::span<const uint16_t> codes() const { return codes_; }

  /// Approximate inner product of `query` with every indexed vector:
  /// scores[i] = sum_p table[p][code_ip]. `scores` must have size() entries.
  void ApproxInnerProducts(std::span<const float> query,
                           std::span<float> scores) const;

  /// Same as ApproxInnerProducts but reuses a caller-provided table buffer
  /// of size m * 2^b (avoids per-call allocation on the decode hot path).
  void ApproxInnerProductsWithTable(std::span<const float> query,
                                    std::span<float> table,
                                    std::span<float> scores) const;

  /// Token ids of the approximately most similar k vectors, best first.
  std::vector<int32_t> TopK(std::span<const float> query, size_t k) const;

  /// Allocation-free TopK for the decode hot path: distance table and score
  /// buffers come from the caller (resized in place, so reused buffers reach
  /// a steady state with no per-call heap traffic) and the result is written
  /// into `out`, best first.
  void TopKInto(std::span<const float> query, size_t k,
                std::vector<float>& table_scratch,
                std::vector<float>& scores_scratch,
                std::vector<int32_t>& out) const;

  /// Bytes of code storage held (for memory accounting at b-bit precision,
  /// i.e. size * m * b / 8, not the in-memory uint16 footprint).
  double LogicalCodeBytes() const {
    return static_cast<double>(size()) *
           codebook_.config().code_bytes_per_vector();
  }

 private:
  PQCodebook codebook_;
  std::vector<uint16_t> codes_;  // Row-major [size, m].
};

}  // namespace pqcache

#endif  // PQCACHE_PQ_PQ_INDEX_H_

#include "src/pq/pq_index.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace pqcache {

void PQIndex::AddVectors(std::span<const float> vecs, size_t n) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  codes_.resize(old + n * static_cast<size_t>(m));
  codebook_.EncodeBatch(vecs, n,
                        {codes_.data() + old, n * static_cast<size_t>(m)});
}

void PQIndex::AddCodes(std::span<const uint16_t> codes, size_t n) {
  PQC_CHECK_EQ(codes.size(),
               n * static_cast<size_t>(codebook_.config().num_partitions));
  codes_.insert(codes_.end(), codes.begin(), codes.end());
}

void PQIndex::AddVector(std::span<const float> vec) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  codes_.resize(old + static_cast<size_t>(m));
  codebook_.Encode(vec, {codes_.data() + old, static_cast<size_t>(m)});
}

void PQIndex::ApproxInnerProducts(std::span<const float> query,
                                  std::span<float> scores) const {
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  std::vector<float> table(m * kc);
  ApproxInnerProductsWithTable(query, table, scores);
}

void PQIndex::ApproxInnerProductsWithTable(std::span<const float> query,
                                           std::span<float> table,
                                           std::span<float> scores) const {
  const size_t n = size();
  PQC_CHECK_EQ(scores.size(), n);
  codebook_.BuildInnerProductTable(query, table);
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  // Gather-and-reduce over codes: the (h_kv, s, m) x (h_kv, m, 1) step of
  // Section 3.2. Specialize the common small-m cases so the inner loop stays
  // branch-free.
  const uint16_t* code = codes_.data();
  if (m == 2) {
    const float* t0 = table.data();
    const float* t1 = table.data() + kc;
    for (size_t i = 0; i < n; ++i, code += 2) {
      scores[i] = t0[code[0]] + t1[code[1]];
    }
    return;
  }
  if (m == 4) {
    const float* t0 = table.data();
    const float* t1 = table.data() + kc;
    const float* t2 = table.data() + 2 * kc;
    const float* t3 = table.data() + 3 * kc;
    for (size_t i = 0; i < n; ++i, code += 4) {
      scores[i] = t0[code[0]] + t1[code[1]] + t2[code[2]] + t3[code[3]];
    }
    return;
  }
  for (size_t i = 0; i < n; ++i, code += m) {
    float acc = 0.0f;
    for (size_t p = 0; p < m; ++p) acc += table[p * kc + code[p]];
    scores[i] = acc;
  }
}

std::vector<int32_t> PQIndex::TopK(std::span<const float> query,
                                   size_t k) const {
  std::vector<float> scores(size());
  ApproxInnerProducts(query, scores);
  return TopKIndices(scores, k);
}

}  // namespace pqcache

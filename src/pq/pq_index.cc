#include "src/pq/pq_index.h"

#include "src/common/logging.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace pqcache {

void PQIndex::AddVectors(std::span<const float> vecs, size_t n) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  codes_.resize(old + n * static_cast<size_t>(m));
  codebook_.EncodeBatch(vecs, n,
                        {codes_.data() + old, n * static_cast<size_t>(m)});
}

void PQIndex::AddCodes(std::span<const uint16_t> codes, size_t n) {
  PQC_CHECK_EQ(codes.size(),
               n * static_cast<size_t>(codebook_.config().num_partitions));
  codes_.insert(codes_.end(), codes.begin(), codes.end());
}

void PQIndex::AddVector(std::span<const float> vec) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  const size_t needed = old + static_cast<size_t>(m);
  // Grow with 2x headroom: the decode loop appends one evicted token per
  // step, and doubling keeps those appends allocation-free between growths.
  if (codes_.capacity() < needed) codes_.reserve(2 * needed);
  codes_.resize(needed);
  codebook_.Encode(vec, {codes_.data() + old, static_cast<size_t>(m)});
}

void PQIndex::ApproxInnerProducts(std::span<const float> query,
                                  std::span<float> scores) const {
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  // Thread-local table: repeated scoring (one call per decoded token per
  // head) reuses the buffer instead of allocating m * 2^b floats each time.
  thread_local std::vector<float> table;
  if (table.size() < m * kc) table.resize(m * kc);
  ApproxInnerProductsWithTable(query, {table.data(), m * kc}, scores);
}

void PQIndex::ApproxInnerProductsWithTable(std::span<const float> query,
                                           std::span<float> table,
                                           std::span<float> scores) const {
  const size_t n = size();
  PQC_CHECK_EQ(scores.size(), n);
  // Aggregate kernel-level timing (Fig. 12's decode decomposition): armed
  // separately from tracing because it costs clock reads per scoring call.
  // Disarmed cost: one relaxed load.
  const bool profile = obs::MetricsRegistry::KernelProfilingEnabled();
  const uint64_t t0 = profile ? obs::MonotonicNowNs() : 0;
  codebook_.BuildInnerProductTable(query, table);
  const uint64_t t1 = profile ? obs::MonotonicNowNs() : 0;
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  // Fused gather-and-reduce over codes: the (h_kv, s, m) x (h_kv, m, 1) step
  // of Section 3.2, dispatched to the SIMD subsystem (AVX2 gathers across
  // eight tokens per pass, or the branch-free scalar reference).
  simd::Kernels().gather_reduce_scores(table.data(), kc, codes_.data(), n, m,
                                       scores.data());
  if (profile) {
    const uint64_t t2 = obs::MonotonicNowNs();
    obs::MetricsRegistry::Add(obs::Counter::kLutBuilds);
    obs::MetricsRegistry::Add(obs::Counter::kGatherReduces);
    obs::MetricsRegistry::Observe(obs::Histo::kLutBuildSeconds,
                                  static_cast<double>(t1 - t0) * 1e-9);
    obs::MetricsRegistry::Observe(obs::Histo::kGatherReduceSeconds,
                                  static_cast<double>(t2 - t1) * 1e-9);
  }
}

std::vector<int32_t> PQIndex::TopK(std::span<const float> query,
                                   size_t k) const {
  std::vector<float> table;
  std::vector<float> scores;
  std::vector<int32_t> out;
  TopKInto(query, k, table, scores, out);
  return out;
}

void PQIndex::TopKInto(std::span<const float> query, size_t k,
                       std::vector<float>& table_scratch,
                       std::vector<float>& scores_scratch,
                       std::vector<int32_t>& out) const {
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  const size_t n = size();
  if (table_scratch.size() < m * kc) table_scratch.resize(m * kc);
  if (scores_scratch.size() < n) scores_scratch.resize(n);
  ApproxInnerProductsWithTable(query, {table_scratch.data(), m * kc},
                               {scores_scratch.data(), n});
  TopKIndicesInto({scores_scratch.data(), n}, k, out);
}

}  // namespace pqcache

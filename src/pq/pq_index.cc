#include "src/pq/pq_index.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace pqcache {

void PQIndex::AddVectors(std::span<const float> vecs, size_t n) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  codes_.resize(old + n * static_cast<size_t>(m));
  codebook_.EncodeBatch(vecs, n,
                        {codes_.data() + old, n * static_cast<size_t>(m)});
}

void PQIndex::AddCodes(std::span<const uint16_t> codes, size_t n) {
  PQC_CHECK_EQ(codes.size(),
               n * static_cast<size_t>(codebook_.config().num_partitions));
  codes_.insert(codes_.end(), codes.begin(), codes.end());
}

void PQIndex::AddVector(std::span<const float> vec) {
  const int m = codebook_.config().num_partitions;
  const size_t old = codes_.size();
  const size_t needed = old + static_cast<size_t>(m);
  // Grow with 2x headroom: the decode loop appends one evicted token per
  // step, and doubling keeps those appends allocation-free between growths.
  if (codes_.capacity() < needed) codes_.reserve(2 * needed);
  codes_.resize(needed);
  codebook_.Encode(vec, {codes_.data() + old, static_cast<size_t>(m)});
}

void PQIndex::ApproxInnerProducts(std::span<const float> query,
                                  std::span<float> scores) const {
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  // Thread-local table: repeated scoring (one call per decoded token per
  // head) reuses the buffer instead of allocating m * 2^b floats each time.
  thread_local std::vector<float> table;
  if (table.size() < m * kc) table.resize(m * kc);
  ApproxInnerProductsWithTable(query, {table.data(), m * kc}, scores);
}

void PQIndex::ApproxInnerProductsWithTable(std::span<const float> query,
                                           std::span<float> table,
                                           std::span<float> scores) const {
  const size_t n = size();
  PQC_CHECK_EQ(scores.size(), n);
  codebook_.BuildInnerProductTable(query, table);
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  // Fused gather-and-reduce over codes: the (h_kv, s, m) x (h_kv, m, 1) step
  // of Section 3.2, dispatched to the SIMD subsystem (AVX2 gathers across
  // eight tokens per pass, or the branch-free scalar reference).
  simd::Kernels().gather_reduce_scores(table.data(), kc, codes_.data(), n, m,
                                       scores.data());
}

std::vector<int32_t> PQIndex::TopK(std::span<const float> query,
                                   size_t k) const {
  std::vector<float> table;
  std::vector<float> scores;
  std::vector<int32_t> out;
  TopKInto(query, k, table, scores, out);
  return out;
}

void PQIndex::TopKInto(std::span<const float> query, size_t k,
                       std::vector<float>& table_scratch,
                       std::vector<float>& scores_scratch,
                       std::vector<int32_t>& out) const {
  const size_t kc = static_cast<size_t>(codebook_.config().num_centroids());
  const size_t m = static_cast<size_t>(codebook_.config().num_partitions);
  const size_t n = size();
  if (table_scratch.size() < m * kc) table_scratch.resize(m * kc);
  if (scores_scratch.size() < n) scores_scratch.resize(n);
  ApproxInnerProductsWithTable(query, {table_scratch.data(), m * kc},
                               {scores_scratch.data(), n});
  TopKIndicesInto({scores_scratch.data(), n}, k, out);
}

}  // namespace pqcache

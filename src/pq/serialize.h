// Binary (de)serialization of PQ structures, so prefill-built state can be
// persisted and shipped — the building block for the paper's multi-turn
// reuse and disk-tier extensions (Sections 2.3 and 5) and for whole-session
// checkpointing (PQCacheEngine::SaveCheckpoint).
//
// Format: little-endian, versioned, no external dependencies.
//   v1: codebook ("PQCB") and index ("PQIX") records.
//   v2: adds span-set records ("PQSS": ordered closed spans + optional open
//       tail) and hardened loading — length fields are validated against the
//       record's own configuration before any allocation, and truncated or
//       absurd streams fail with Status::DataLoss instead of allocating.
// The codebook/index payload is unchanged since v1, so v2 loaders read v1
// records; span-set records exist only in v2.
#ifndef PQCACHE_PQ_SERIALIZE_H_
#define PQCACHE_PQ_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "src/common/status.h"
#include "src/pq/pq_index.h"
#include "src/pq/pq_span_set.h"

namespace pqcache {

namespace serialize_internal {

/// POD stream helpers shared by the serialize.cc loaders and the engine
/// checkpoint code (pqcache_engine.cc), so the corruption-hardening logic
/// exists exactly once.
template <typename T>
inline void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
inline bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

/// Reads `count` PODs into `out` in bounded chunks, so a corrupt length
/// field never forces a single huge allocation: growth tracks the bytes
/// actually present in the stream (plus one chunk of slack). Returns false
/// when the stream ends early.
template <typename T>
inline bool ReadChunked(std::istream& is, uint64_t count, std::vector<T>* out) {
  constexpr uint64_t kChunkElems = (1u << 20) / sizeof(T);  // 1 MiB chunks.
  out->clear();
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint64_t chunk = remaining < kChunkElems ? remaining : kChunkElems;
    const size_t old_size = out->size();
    out->resize(old_size + static_cast<size_t>(chunk));
    is.read(reinterpret_cast<char*>(out->data() + old_size),
            static_cast<std::streamsize>(chunk * sizeof(T)));
    if (!is) return false;
    remaining -= chunk;
  }
  return true;
}

}  // namespace serialize_internal

/// Writes a trained codebook. Fails on stream errors or untrained input.
Status SaveCodebook(const PQCodebook& codebook, std::ostream& os);

/// Reads a codebook written by SaveCodebook. Corrupt or truncated input is
/// rejected with DataLoss before any centroid storage is allocated (the
/// centroid count must equal exactly m * 2^b * sub_dim from the header).
Result<PQCodebook> LoadCodebook(std::istream& is);

/// Writes an index (codebook + codes).
Status SaveIndex(const PQIndex& index, std::ostream& os);

/// Reads an index written by SaveIndex. Codes are read in bounded chunks so
/// a forged length field cannot force a huge up-front allocation; a stream
/// that ends early fails with DataLoss.
Result<PQIndex> LoadIndex(std::istream& is);

/// Writes a span set: base token, every closed span (begin + index), and the
/// open tail span when present. Span ownership (shared vs. private) is not
/// part of the format — a reloaded span set owns all of its spans.
Status SaveSpanSet(const PQSpanSet& set, std::ostream& os);

/// Reads a span set written by SaveSpanSet. Span adjacency (each closed
/// span's begin equals the previous coverage end) is re-validated; violations
/// fail with DataLoss rather than tripping internal invariants.
Result<PQSpanSet> LoadSpanSet(std::istream& is);

}  // namespace pqcache

#endif  // PQCACHE_PQ_SERIALIZE_H_

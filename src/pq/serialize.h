// Binary (de)serialization of PQ codebooks and indexes, so prefill-built
// structures can be persisted and shipped — the building block for the
// paper's multi-turn reuse and disk-tier extensions (Sections 2.3 and 5).
// Format: little-endian, versioned, no external dependencies.
#ifndef PQCACHE_PQ_SERIALIZE_H_
#define PQCACHE_PQ_SERIALIZE_H_

#include <istream>
#include <ostream>

#include "src/common/status.h"
#include "src/pq/pq_index.h"

namespace pqcache {

/// Writes a trained codebook. Fails on stream errors or untrained input.
Status SaveCodebook(const PQCodebook& codebook, std::ostream& os);

/// Reads a codebook written by SaveCodebook.
Result<PQCodebook> LoadCodebook(std::istream& is);

/// Writes an index (codebook + codes).
Status SaveIndex(const PQIndex& index, std::ostream& os);

/// Reads an index written by SaveIndex.
Result<PQIndex> LoadIndex(std::istream& is);

}  // namespace pqcache

#endif  // PQCACHE_PQ_SERIALIZE_H_

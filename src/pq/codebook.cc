#include "src/pq/codebook.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace pqcache {

Status PQConfig::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument("PQConfig: num_partitions must be >= 1");
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("PQConfig: bits must be in [1, 16]");
  }
  if (dim == 0 || dim % static_cast<size_t>(num_partitions) != 0) {
    return Status::InvalidArgument(
        "PQConfig: num_partitions must divide dim");
  }
  return Status::OK();
}

Result<PQCodebook> PQCodebook::Train(std::span<const float> vectors, size_t n,
                                     const PQConfig& config,
                                     const KMeansOptions& kmeans,
                                     ThreadPool* pool) {
  PQC_RETURN_IF_ERROR(config.Validate());
  if (n == 0) return Status::InvalidArgument("PQCodebook::Train: no vectors");
  if (vectors.size() != n * config.dim) {
    return Status::InvalidArgument("PQCodebook::Train: bad vectors size");
  }

  const int m = config.num_partitions;
  const size_t sub = config.sub_dim();
  const size_t kc = static_cast<size_t>(config.num_centroids());

  PQCodebook book;
  book.config_ = config;
  book.centroids_.assign(static_cast<size_t>(m) * kc * sub, 0.0f);
  book.iterations_.assign(m, 0);

  std::vector<Status> statuses(m, Status::OK());
  auto train_partition = [&](size_t p) {
    // Gather the p-th sub-vector of every input into a contiguous buffer.
    std::vector<float> subdata(n * sub);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(subdata.data() + i * sub,
                  vectors.data() + i * config.dim + p * sub,
                  sub * sizeof(float));
    }
    KMeansOptions opts = kmeans;
    opts.num_clusters = config.num_centroids();
    opts.seed = kmeans.seed + 0x9E37u * (p + 1);
    opts.pool = nullptr;  // Partition-level parallelism only.
    auto res = RunKMeans(subdata, n, sub, opts);
    if (!res.ok()) {
      statuses[p] = res.status();
      return;
    }
    std::memcpy(book.centroids_.data() + p * kc * sub,
                res.value().centroids.data(), kc * sub * sizeof(float));
    book.iterations_[p] = res.value().iterations;
  };

  if (pool != nullptr && m > 1) {
    ParallelFor(*pool, 0, static_cast<size_t>(m), train_partition);
  } else {
    for (int p = 0; p < m; ++p) train_partition(static_cast<size_t>(p));
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  book.RefreshCentroidNorms();
  return book;
}

Result<PQCodebook> PQCodebook::FromParts(const PQConfig& config,
                                         std::vector<float> centroids) {
  PQC_RETURN_IF_ERROR(config.Validate());
  const size_t expected = static_cast<size_t>(config.num_partitions) *
                          static_cast<size_t>(config.num_centroids()) *
                          config.sub_dim();
  if (centroids.size() != expected) {
    return Status::InvalidArgument("PQCodebook::FromParts: bad centroid size");
  }
  PQCodebook book;
  book.config_ = config;
  book.centroids_ = std::move(centroids);
  book.iterations_.assign(static_cast<size_t>(config.num_partitions), 0);
  book.RefreshCentroidNorms();
  return book;
}

void PQCodebook::RefreshCentroidNorms() {
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  const size_t sub = config_.sub_dim();
  const size_t total = static_cast<size_t>(config_.num_partitions) * kc;
  centroid_norms_.resize(total);
  // Centroid storage is contiguous across partitions, so one pass covers all.
  simd::Kernels().row_norms_squared(centroids_.data(), total, sub,
                                    centroid_norms_.data());
}

std::span<const float> PQCodebook::PartitionCentroidNormsSquared(
    int partition) const {
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  return {centroid_norms_.data() + static_cast<size_t>(partition) * kc, kc};
}

std::span<const float> PQCodebook::PartitionCentroids(int partition) const {
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  const size_t sub = config_.sub_dim();
  return {centroids_.data() + static_cast<size_t>(partition) * kc * sub,
          kc * sub};
}

void PQCodebook::Encode(std::span<const float> vec,
                        std::span<uint16_t> codes) const {
  PQC_CHECK_EQ(vec.size(), config_.dim);
  PQC_CHECK_EQ(codes.size(), static_cast<size_t>(config_.num_partitions));
  EncodeBatch(vec, 1, codes);
}

void PQCodebook::EncodeBatch(std::span<const float> vecs, size_t n,
                             std::span<uint16_t> codes) const {
  PQC_CHECK_EQ(vecs.size(), n * config_.dim);
  PQC_CHECK_EQ(codes.size(), n * static_cast<size_t>(config_.num_partitions));
  const int m = config_.num_partitions;
  const size_t sub = config_.sub_dim();
  const size_t kc = static_cast<size_t>(config_.num_centroids());

  if (simd::ActiveLevel() == simd::SimdLevel::kScalar) {
    // Reference path: exhaustive nearest-centroid scan, bit-identical to the
    // pre-SIMD implementation.
    for (size_t i = 0; i < n; ++i) {
      const float* vec = vecs.data() + i * config_.dim;
      uint16_t* row = codes.data() + i * static_cast<size_t>(m);
      for (int p = 0; p < m; ++p) {
        row[p] = static_cast<uint16_t>(NearestCentroid(
            {vec + p * sub, sub}, PartitionCentroids(p), kc, sub));
      }
    }
    return;
  }

  // Norm-trick path: nearest-centroid search as batched dot products against
  // the centroid matrix plus precomputed centroid norms. Partition-major
  // iteration keeps one [2^b, sub_dim] centroid table hot per pass. The dots
  // scratch is thread-local so steady-state encodes (one evicted token per
  // decode step) allocate nothing.
  thread_local std::vector<float> dots;
  if (dots.size() < kc) dots.resize(kc);
  for (int p = 0; p < m; ++p) {
    std::span<const float> cents = PartitionCentroids(p);
    std::span<const float> norms = PartitionCentroidNormsSquared(p);
    for (size_t i = 0; i < n; ++i) {
      const int32_t best = NearestCentroidNormTrick(
          {vecs.data() + i * config_.dim + p * sub, sub}, cents, norms, kc,
          sub, dots);
      codes[i * static_cast<size_t>(m) + p] = static_cast<uint16_t>(best);
    }
  }
}

void PQCodebook::Decode(std::span<const uint16_t> codes,
                        std::span<float> out) const {
  PQC_CHECK_EQ(codes.size(), static_cast<size_t>(config_.num_partitions));
  PQC_CHECK_EQ(out.size(), config_.dim);
  const size_t sub = config_.sub_dim();
  for (int p = 0; p < config_.num_partitions; ++p) {
    std::span<const float> table = PartitionCentroids(p);
    std::memcpy(out.data() + p * sub, table.data() + size_t{codes[p]} * sub,
                sub * sizeof(float));
  }
}

void PQCodebook::BuildInnerProductTable(std::span<const float> query,
                                        std::span<float> table) const {
  PQC_CHECK_EQ(query.size(), config_.dim);
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  PQC_CHECK_EQ(table.size(), static_cast<size_t>(config_.num_partitions) * kc);
  const size_t sub = config_.sub_dim();
  // Each partition's table is a [2^b, sub_dim] centroid matrix times the
  // query sub-vector: a blocked MatVec through the SIMD dispatch.
  const simd::KernelTable& kernels = simd::Kernels();
  for (int p = 0; p < config_.num_partitions; ++p) {
    std::span<const float> cents = PartitionCentroids(p);
    kernels.matvec(cents.data(), query.data() + p * sub,
                   table.data() + static_cast<size_t>(p) * kc, kc, sub);
  }
}

}  // namespace pqcache

#include "src/pq/codebook.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace pqcache {

Status PQConfig::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument("PQConfig: num_partitions must be >= 1");
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("PQConfig: bits must be in [1, 16]");
  }
  if (dim == 0 || dim % static_cast<size_t>(num_partitions) != 0) {
    return Status::InvalidArgument(
        "PQConfig: num_partitions must divide dim");
  }
  return Status::OK();
}

Result<PQCodebook> PQCodebook::Train(std::span<const float> vectors, size_t n,
                                     const PQConfig& config,
                                     const KMeansOptions& kmeans,
                                     ThreadPool* pool) {
  PQC_RETURN_IF_ERROR(config.Validate());
  if (n == 0) return Status::InvalidArgument("PQCodebook::Train: no vectors");
  if (vectors.size() != n * config.dim) {
    return Status::InvalidArgument("PQCodebook::Train: bad vectors size");
  }

  const int m = config.num_partitions;
  const size_t sub = config.sub_dim();
  const size_t kc = static_cast<size_t>(config.num_centroids());

  PQCodebook book;
  book.config_ = config;
  book.centroids_.assign(static_cast<size_t>(m) * kc * sub, 0.0f);
  book.iterations_.assign(m, 0);

  std::vector<Status> statuses(m, Status::OK());
  auto train_partition = [&](size_t p) {
    // Gather the p-th sub-vector of every input into a contiguous buffer.
    std::vector<float> subdata(n * sub);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(subdata.data() + i * sub,
                  vectors.data() + i * config.dim + p * sub,
                  sub * sizeof(float));
    }
    KMeansOptions opts = kmeans;
    opts.num_clusters = config.num_centroids();
    opts.seed = kmeans.seed + 0x9E37u * (p + 1);
    opts.pool = nullptr;  // Partition-level parallelism only.
    auto res = RunKMeans(subdata, n, sub, opts);
    if (!res.ok()) {
      statuses[p] = res.status();
      return;
    }
    std::memcpy(book.centroids_.data() + p * kc * sub,
                res.value().centroids.data(), kc * sub * sizeof(float));
    book.iterations_[p] = res.value().iterations;
  };

  if (pool != nullptr && m > 1) {
    ParallelFor(*pool, 0, static_cast<size_t>(m), train_partition);
  } else {
    for (int p = 0; p < m; ++p) train_partition(static_cast<size_t>(p));
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return book;
}

Result<PQCodebook> PQCodebook::FromParts(const PQConfig& config,
                                         std::vector<float> centroids) {
  PQC_RETURN_IF_ERROR(config.Validate());
  const size_t expected = static_cast<size_t>(config.num_partitions) *
                          static_cast<size_t>(config.num_centroids()) *
                          config.sub_dim();
  if (centroids.size() != expected) {
    return Status::InvalidArgument("PQCodebook::FromParts: bad centroid size");
  }
  PQCodebook book;
  book.config_ = config;
  book.centroids_ = std::move(centroids);
  book.iterations_.assign(static_cast<size_t>(config.num_partitions), 0);
  return book;
}

std::span<const float> PQCodebook::PartitionCentroids(int partition) const {
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  const size_t sub = config_.sub_dim();
  return {centroids_.data() + static_cast<size_t>(partition) * kc * sub,
          kc * sub};
}

std::span<float> PQCodebook::MutablePartitionCentroids(int partition) {
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  const size_t sub = config_.sub_dim();
  return {centroids_.data() + static_cast<size_t>(partition) * kc * sub,
          kc * sub};
}

void PQCodebook::Encode(std::span<const float> vec,
                        std::span<uint16_t> codes) const {
  PQC_CHECK_EQ(vec.size(), config_.dim);
  PQC_CHECK_EQ(codes.size(), static_cast<size_t>(config_.num_partitions));
  const size_t sub = config_.sub_dim();
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  for (int p = 0; p < config_.num_partitions; ++p) {
    codes[p] = static_cast<uint16_t>(
        NearestCentroid({vec.data() + p * sub, sub}, PartitionCentroids(p),
                        kc, sub));
  }
}

void PQCodebook::EncodeBatch(std::span<const float> vecs, size_t n,
                             std::span<uint16_t> codes) const {
  PQC_CHECK_EQ(vecs.size(), n * config_.dim);
  PQC_CHECK_EQ(codes.size(), n * static_cast<size_t>(config_.num_partitions));
  const int m = config_.num_partitions;
  for (size_t i = 0; i < n; ++i) {
    Encode({vecs.data() + i * config_.dim, config_.dim},
           {codes.data() + i * m, static_cast<size_t>(m)});
  }
}

void PQCodebook::Decode(std::span<const uint16_t> codes,
                        std::span<float> out) const {
  PQC_CHECK_EQ(codes.size(), static_cast<size_t>(config_.num_partitions));
  PQC_CHECK_EQ(out.size(), config_.dim);
  const size_t sub = config_.sub_dim();
  for (int p = 0; p < config_.num_partitions; ++p) {
    std::span<const float> table = PartitionCentroids(p);
    std::memcpy(out.data() + p * sub, table.data() + size_t{codes[p]} * sub,
                sub * sizeof(float));
  }
}

void PQCodebook::BuildInnerProductTable(std::span<const float> query,
                                        std::span<float> table) const {
  PQC_CHECK_EQ(query.size(), config_.dim);
  const size_t kc = static_cast<size_t>(config_.num_centroids());
  PQC_CHECK_EQ(table.size(), static_cast<size_t>(config_.num_partitions) * kc);
  const size_t sub = config_.sub_dim();
  for (int p = 0; p < config_.num_partitions; ++p) {
    std::span<const float> cents = PartitionCentroids(p);
    std::span<const float> q{query.data() + p * sub, sub};
    float* out = table.data() + static_cast<size_t>(p) * kc;
    for (size_t c = 0; c < kc; ++c) {
      out[c] = Dot(q, {cents.data() + c * sub, sub});
    }
  }
}

}  // namespace pqcache

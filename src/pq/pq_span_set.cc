#include "src/pq/pq_span_set.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace pqcache {

void PQSpanSet::Reset(size_t base_token) {
  base_token_ = base_token;
  closed_.clear();
  closed_total_ = 0;
  open_ = PQIndex();
  open_begin_ = base_token;
  has_open_ = false;
}

void PQSpanSet::AddClosed(size_t begin, std::shared_ptr<const PQIndex> index,
                          bool shared) {
  PQC_CHECK(!has_open_);  // Closed spans precede the open tail.
  PQC_CHECK_EQ(begin, base_token_ + closed_total_);
  PQC_CHECK(index != nullptr);
  closed_total_ += index->size();
  open_begin_ = begin + index->size();
  closed_.push_back(PQClosedSpan{begin, std::move(index), shared});
}

void PQSpanSet::SetOpen(PQIndex index) {
  PQC_CHECK(!has_open_);
  open_ = std::move(index);
  open_begin_ = base_token_ + closed_total_;
  has_open_ = true;
}

bool PQSpanSet::trained() const {
  if (has_open_ && open_.trained()) return true;
  return !closed_.empty();
}

void PQSpanSet::AddVector(std::span<const float> vec) {
  PQC_CHECK(has_open_ && open_.trained());
  open_.AddVector(vec);
}

void PQSpanSet::TopKInto(std::span<const float> query, size_t k,
                         std::vector<float>& table_scratch,
                         std::vector<float>& scores_scratch,
                         std::vector<int32_t>& out) const {
  const size_t n = size();
  out.clear();
  if (n == 0 || k == 0) return;
  if (scores_scratch.size() < n) scores_scratch.resize(n);

  size_t offset = 0;
  for (const PQClosedSpan& span : closed_) {
    const PQConfig& config = span.index->codebook().config();
    const size_t table_len = static_cast<size_t>(config.num_partitions) *
                             static_cast<size_t>(config.num_centroids());
    if (table_scratch.size() < table_len) table_scratch.resize(table_len);
    span.index->ApproxInnerProductsWithTable(
        query, {table_scratch.data(), table_len},
        {scores_scratch.data() + offset, span.index->size()});
    offset += span.index->size();
  }
  if (has_open_ && open_.size() > 0) {
    const PQConfig& config = open_.codebook().config();
    const size_t table_len = static_cast<size_t>(config.num_partitions) *
                             static_cast<size_t>(config.num_centroids());
    if (table_scratch.size() < table_len) table_scratch.resize(table_len);
    open_.ApproxInnerProductsWithTable(
        query, {table_scratch.data(), table_len},
        {scores_scratch.data() + offset, open_.size()});
    offset += open_.size();
  }
  PQC_CHECK_EQ(offset, n);
  TopKIndicesInto({scores_scratch.data(), n}, k, out);
}

double PQSpanSet::LogicalCodeBytes() const {
  double total = has_open_ ? open_.LogicalCodeBytes() : 0.0;
  for (const PQClosedSpan& span : closed_) {
    total += span.index->LogicalCodeBytes();
  }
  return total;
}

double PQSpanSet::PrivateLogicalCodeBytes() const {
  double total = has_open_ ? open_.LogicalCodeBytes() : 0.0;
  for (const PQClosedSpan& span : closed_) {
    if (!span.shared) total += span.index->LogicalCodeBytes();
  }
  return total;
}

size_t PQSpanSet::PrivateCodebooks() const {
  size_t count = has_open_ && open_.trained() ? 1 : 0;
  for (const PQClosedSpan& span : closed_) {
    if (!span.shared) ++count;
  }
  return count;
}

size_t PQSpanSet::SharedCodebooks() const {
  size_t count = 0;
  for (const PQClosedSpan& span : closed_) {
    if (span.shared) ++count;
  }
  return count;
}

}  // namespace pqcache

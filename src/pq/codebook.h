// Product Quantization codebook (paper Section 2.2 / 3.1). A vector of
// dimension d is split into m sub-vectors of dimension d/m; each sub-space is
// clustered into 2^b centroids; a vector is represented by m b-bit codes.
#ifndef PQCACHE_PQ_CODEBOOK_H_
#define PQCACHE_PQ_CODEBOOK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/threadpool.h"
#include "src/kmeans/kmeans.h"

namespace pqcache {

/// Shape of a PQ quantizer: m sub-spaces, b bits per code, input dim.
struct PQConfig {
  int num_partitions = 2;  ///< m in the paper.
  int bits = 6;            ///< b in the paper; codes take b bits each.
  size_t dim = 64;         ///< Full vector dimension (d_h per head).

  int num_centroids() const { return 1 << bits; }
  size_t sub_dim() const { return dim / static_cast<size_t>(num_partitions); }

  /// Storage/communication cost of one vector's codes in bytes (m*b/8).
  /// The paper budgets extra communication as a fraction m*b/(16*d_h) of the
  /// FP16 key bytes; this is the numerator.
  double code_bytes_per_vector() const {
    return num_partitions * bits / 8.0;
  }

  /// Validates m >= 1, 1 <= b <= 16, and m divides dim.
  Status Validate() const;
};

/// Trained PQ centroids for one (layer, head). Codes reference rows of the
/// per-partition centroid tables.
class PQCodebook {
 public:
  PQCodebook() = default;

  /// Trains per-partition K-Means on `n` row-major `config.dim`-dimensional
  /// vectors. `kmeans.max_iterations` is the adaptive budget T. Partitions
  /// train in parallel on `pool` when provided (the paper runs h_kv * m
  /// clustering processes concurrently).
  static Result<PQCodebook> Train(std::span<const float> vectors, size_t n,
                                  const PQConfig& config,
                                  const KMeansOptions& kmeans,
                                  ThreadPool* pool = nullptr);

  const PQConfig& config() const { return config_; }
  bool trained() const { return !centroids_.empty(); }

  /// Lloyd iterations executed per partition during training.
  const std::vector<int>& iterations_per_partition() const {
    return iterations_;
  }

  /// Row-major [2^b, sub_dim] centroid table of one partition.
  std::span<const float> PartitionCentroids(int partition) const;

  /// Squared norms of one partition's centroids ([2^b] entries), maintained
  /// for the ||x-c||^2 = ||x||^2 - 2 x.c + ||c||^2 encode fast path.
  /// Computed once at construction (Train / FromParts), so all const
  /// methods are safe for concurrent readers.
  std::span<const float> PartitionCentroidNormsSquared(int partition) const;

  /// Encodes one vector into m codes (nearest centroid per partition).
  void Encode(std::span<const float> vec, std::span<uint16_t> codes) const;

  /// Encodes n row-major vectors; `codes` has n * m entries.
  void EncodeBatch(std::span<const float> vecs, size_t n,
                   std::span<uint16_t> codes) const;

  /// Reconstructs the approximate vector from m codes.
  void Decode(std::span<const uint16_t> codes, std::span<float> out) const;

  /// Fills `table` (size m * 2^b) with dot products between the query's
  /// sub-vectors and every centroid: table[p * 2^b + c] = <q_p, centroid_pc>.
  /// This is the (h, m, 1, d_m) x (h, m, d_m, 2^b) multiply of Section 3.2.
  void BuildInnerProductTable(std::span<const float> query,
                              std::span<float> table) const;

  /// Total centroid memory in bytes (m * 2^b * sub_dim * 4).
  size_t CentroidBytes() const { return centroids_.size() * sizeof(float); }

  /// Reassembles a codebook from its parts (deserialization). The centroid
  /// vector must have m * 2^b * sub_dim entries.
  static Result<PQCodebook> FromParts(const PQConfig& config,
                                      std::vector<float> centroids);

  /// All centroids, partition-major (serialization).
  std::span<const float> AllCentroids() const { return centroids_; }

 private:
  void RefreshCentroidNorms();

  PQConfig config_;
  /// Layout: partition-major, [m][2^b][sub_dim] flattened.
  std::vector<float> centroids_;
  std::vector<int> iterations_;
  /// Squared centroid norms, [m][2^b], fixed after construction.
  std::vector<float> centroid_norms_;
};

}  // namespace pqcache

#endif  // PQCACHE_PQ_CODEBOOK_H_

#include "src/pq/serialize.h"

#include <cstdint>
#include <vector>

namespace pqcache {

namespace {

constexpr uint32_t kCodebookMagic = 0x50514342;  // "PQCB"
constexpr uint32_t kIndexMagic = 0x50514958;     // "PQIX"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

Status SaveCodebook(const PQCodebook& codebook, std::ostream& os) {
  if (!codebook.trained()) {
    return Status::FailedPrecondition("SaveCodebook: codebook not trained");
  }
  WritePod(os, kCodebookMagic);
  WritePod(os, kVersion);
  const PQConfig& config = codebook.config();
  WritePod(os, static_cast<int32_t>(config.num_partitions));
  WritePod(os, static_cast<int32_t>(config.bits));
  WritePod(os, static_cast<uint64_t>(config.dim));
  const auto centroids = codebook.AllCentroids();
  WritePod(os, static_cast<uint64_t>(centroids.size()));
  os.write(reinterpret_cast<const char*>(centroids.data()),
           static_cast<std::streamsize>(centroids.size() * sizeof(float)));
  if (!os) return Status::Internal("SaveCodebook: stream write failed");
  return Status::OK();
}

Result<PQCodebook> LoadCodebook(std::istream& is) {
  uint32_t magic = 0, version = 0;
  if (!ReadPod(is, &magic) || magic != kCodebookMagic) {
    return Status::InvalidArgument("LoadCodebook: bad magic");
  }
  if (!ReadPod(is, &version) || version != kVersion) {
    return Status::InvalidArgument("LoadCodebook: unsupported version");
  }
  int32_t partitions = 0, bits = 0;
  uint64_t dim = 0, n_centroids = 0;
  if (!ReadPod(is, &partitions) || !ReadPod(is, &bits) ||
      !ReadPod(is, &dim) || !ReadPod(is, &n_centroids)) {
    return Status::InvalidArgument("LoadCodebook: truncated header");
  }
  PQConfig config;
  config.num_partitions = partitions;
  config.bits = bits;
  config.dim = static_cast<size_t>(dim);
  PQC_RETURN_IF_ERROR(config.Validate());
  std::vector<float> centroids(static_cast<size_t>(n_centroids));
  is.read(reinterpret_cast<char*>(centroids.data()),
          static_cast<std::streamsize>(centroids.size() * sizeof(float)));
  if (!is) return Status::InvalidArgument("LoadCodebook: truncated data");
  return PQCodebook::FromParts(config, std::move(centroids));
}

Status SaveIndex(const PQIndex& index, std::ostream& os) {
  WritePod(os, kIndexMagic);
  WritePod(os, kVersion);
  PQC_RETURN_IF_ERROR(SaveCodebook(index.codebook(), os));
  const auto codes = index.codes();
  WritePod(os, static_cast<uint64_t>(index.size()));
  os.write(reinterpret_cast<const char*>(codes.data()),
           static_cast<std::streamsize>(codes.size() * sizeof(uint16_t)));
  if (!os) return Status::Internal("SaveIndex: stream write failed");
  return Status::OK();
}

Result<PQIndex> LoadIndex(std::istream& is) {
  uint32_t magic = 0, version = 0;
  if (!ReadPod(is, &magic) || magic != kIndexMagic) {
    return Status::InvalidArgument("LoadIndex: bad magic");
  }
  if (!ReadPod(is, &version) || version != kVersion) {
    return Status::InvalidArgument("LoadIndex: unsupported version");
  }
  auto codebook = LoadCodebook(is);
  if (!codebook.ok()) return codebook.status();
  uint64_t n = 0;
  if (!ReadPod(is, &n)) {
    return Status::InvalidArgument("LoadIndex: truncated count");
  }
  PQIndex index(std::move(codebook).value());
  const size_t m =
      static_cast<size_t>(index.codebook().config().num_partitions);
  std::vector<uint16_t> codes(static_cast<size_t>(n) * m);
  is.read(reinterpret_cast<char*>(codes.data()),
          static_cast<std::streamsize>(codes.size() * sizeof(uint16_t)));
  if (!is) return Status::InvalidArgument("LoadIndex: truncated codes");
  index.AddCodes(codes, static_cast<size_t>(n));
  return index;
}

}  // namespace pqcache

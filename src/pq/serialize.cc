#include "src/pq/serialize.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pqcache {

using serialize_internal::ReadChunked;
using serialize_internal::ReadPod;
using serialize_internal::WritePod;

namespace {

constexpr uint32_t kCodebookMagic = 0x50514342;  // "PQCB"
constexpr uint32_t kIndexMagic = 0x50514958;     // "PQIX"
constexpr uint32_t kSpanSetMagic = 0x50515353;   // "PQSS"
constexpr uint32_t kVersion = 2;

// Length-field ceilings: far above anything this library produces, far below
// anything that could make a forged field allocate petabytes. Loads reject
// counts beyond these with DataLoss before touching the allocator.
constexpr uint64_t kMaxVectors = 1ull << 32;  ///< Encoded vectors per index.
constexpr uint64_t kMaxSpans = 1ull << 20;    ///< Closed spans per span set.

Status CheckMagicAndVersion(std::istream& is, uint32_t expected_magic,
                            const char* what) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(is, &magic)) {
    return Status::DataLoss(std::string(what) + ": stream ends before magic");
  }
  if (magic != expected_magic) {
    return Status::InvalidArgument(std::string(what) + ": bad magic");
  }
  if (!ReadPod(is, &version)) {
    return Status::DataLoss(std::string(what) +
                            ": stream ends before version");
  }
  // v1 and v2 payloads are identical for codebooks/indexes, so any version
  // up to the current one loads (span-set records first appeared in v2, so a
  // v1 span-set version value can only come from a v1-era writer's bug).
  if (version == 0 || version > kVersion) {
    return Status::InvalidArgument(std::string(what) +
                                   ": unsupported version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

Status SaveCodebook(const PQCodebook& codebook, std::ostream& os) {
  if (!codebook.trained()) {
    return Status::FailedPrecondition("SaveCodebook: codebook not trained");
  }
  WritePod(os, kCodebookMagic);
  WritePod(os, kVersion);
  const PQConfig& config = codebook.config();
  WritePod(os, static_cast<int32_t>(config.num_partitions));
  WritePod(os, static_cast<int32_t>(config.bits));
  WritePod(os, static_cast<uint64_t>(config.dim));
  const auto centroids = codebook.AllCentroids();
  WritePod(os, static_cast<uint64_t>(centroids.size()));
  os.write(reinterpret_cast<const char*>(centroids.data()),
           static_cast<std::streamsize>(centroids.size() * sizeof(float)));
  if (!os) return Status::Internal("SaveCodebook: stream write failed");
  return Status::OK();
}

Result<PQCodebook> LoadCodebook(std::istream& is) {
  PQC_RETURN_IF_ERROR(CheckMagicAndVersion(is, kCodebookMagic, "LoadCodebook"));
  int32_t partitions = 0, bits = 0;
  uint64_t dim = 0, n_centroids = 0;
  if (!ReadPod(is, &partitions) || !ReadPod(is, &bits) ||
      !ReadPod(is, &dim) || !ReadPod(is, &n_centroids)) {
    return Status::DataLoss("LoadCodebook: truncated header");
  }
  PQConfig config;
  config.num_partitions = partitions;
  config.bits = bits;
  config.dim = static_cast<size_t>(dim);
  PQC_RETURN_IF_ERROR(config.Validate());
  // The header fully determines the centroid count; a length field that
  // disagrees is corruption, rejected before any allocation.
  const uint64_t expected =
      static_cast<uint64_t>(config.num_partitions) *
      static_cast<uint64_t>(config.num_centroids()) * config.sub_dim();
  if (n_centroids != expected) {
    return Status::DataLoss("LoadCodebook: centroid count " +
                            std::to_string(n_centroids) +
                            " does not match the header shape (expected " +
                            std::to_string(expected) + ")");
  }
  std::vector<float> centroids;
  if (!ReadChunked(is, n_centroids, &centroids)) {
    return Status::DataLoss("LoadCodebook: truncated centroid data");
  }
  return PQCodebook::FromParts(config, std::move(centroids));
}

Status SaveIndex(const PQIndex& index, std::ostream& os) {
  WritePod(os, kIndexMagic);
  WritePod(os, kVersion);
  PQC_RETURN_IF_ERROR(SaveCodebook(index.codebook(), os));
  const auto codes = index.codes();
  WritePod(os, static_cast<uint64_t>(index.size()));
  os.write(reinterpret_cast<const char*>(codes.data()),
           static_cast<std::streamsize>(codes.size() * sizeof(uint16_t)));
  if (!os) return Status::Internal("SaveIndex: stream write failed");
  return Status::OK();
}

Result<PQIndex> LoadIndex(std::istream& is) {
  PQC_RETURN_IF_ERROR(CheckMagicAndVersion(is, kIndexMagic, "LoadIndex"));
  auto codebook = LoadCodebook(is);
  if (!codebook.ok()) return codebook.status();
  uint64_t n = 0;
  if (!ReadPod(is, &n)) {
    return Status::DataLoss("LoadIndex: truncated count");
  }
  if (n > kMaxVectors) {
    return Status::DataLoss("LoadIndex: absurd vector count " +
                            std::to_string(n));
  }
  PQIndex index(std::move(codebook).value());
  const uint64_t m =
      static_cast<uint64_t>(index.codebook().config().num_partitions);
  std::vector<uint16_t> codes;
  if (!ReadChunked(is, n * m, &codes)) {
    return Status::DataLoss("LoadIndex: truncated codes");
  }
  // Codes index a 2^b-entry centroid table; an out-of-range value would
  // read past the ADC distance table at search time, so it is corruption
  // here, not a search-time concern.
  const uint32_t num_centroids = static_cast<uint32_t>(
      index.codebook().config().num_centroids());  // Up to 2^16: compare wide.
  for (uint16_t code : codes) {
    if (code >= num_centroids) {
      return Status::DataLoss("LoadIndex: code value " +
                              std::to_string(code) +
                              " outside the 2^b centroid range");
    }
  }
  index.AddCodes(codes, static_cast<size_t>(n));
  return index;
}

Status SaveSpanSet(const PQSpanSet& set, std::ostream& os) {
  if (set.has_open() && !set.open().trained()) {
    return Status::FailedPrecondition(
        "SaveSpanSet: open span without a trained codebook");
  }
  WritePod(os, kSpanSetMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<uint64_t>(set.base_token()));
  WritePod(os, static_cast<uint32_t>(set.closed().size()));
  for (const PQClosedSpan& span : set.closed()) {
    WritePod(os, static_cast<uint64_t>(span.begin));
    PQC_RETURN_IF_ERROR(SaveIndex(*span.index, os));
  }
  WritePod(os, static_cast<uint8_t>(set.has_open() ? 1 : 0));
  if (set.has_open()) {
    PQC_RETURN_IF_ERROR(SaveIndex(set.open(), os));
  }
  if (!os) return Status::Internal("SaveSpanSet: stream write failed");
  return Status::OK();
}

Result<PQSpanSet> LoadSpanSet(std::istream& is) {
  PQC_RETURN_IF_ERROR(CheckMagicAndVersion(is, kSpanSetMagic, "LoadSpanSet"));
  uint64_t base_token = 0;
  uint32_t n_closed = 0;
  if (!ReadPod(is, &base_token) || !ReadPod(is, &n_closed)) {
    return Status::DataLoss("LoadSpanSet: truncated header");
  }
  if (n_closed > kMaxSpans) {
    return Status::DataLoss("LoadSpanSet: absurd span count " +
                            std::to_string(n_closed));
  }
  PQSpanSet set;
  set.Reset(static_cast<size_t>(base_token));
  uint64_t cursor = base_token;
  for (uint32_t i = 0; i < n_closed; ++i) {
    uint64_t begin = 0;
    if (!ReadPod(is, &begin)) {
      return Status::DataLoss("LoadSpanSet: truncated span header");
    }
    // AddClosed enforces adjacency with a fatal check; validate here so a
    // corrupt stream surfaces as a recoverable error instead.
    if (begin != cursor) {
      return Status::DataLoss("LoadSpanSet: non-adjacent span at token " +
                              std::to_string(begin) + " (expected " +
                              std::to_string(cursor) + ")");
    }
    auto index = LoadIndex(is);
    if (!index.ok()) return index.status();
    cursor += index.value().size();
    set.AddClosed(static_cast<size_t>(begin),
                  std::make_shared<const PQIndex>(std::move(index).value()),
                  /*shared=*/false);
  }
  uint8_t has_open = 0;
  if (!ReadPod(is, &has_open)) {
    return Status::DataLoss("LoadSpanSet: truncated open-span flag");
  }
  if (has_open > 1) {
    return Status::DataLoss("LoadSpanSet: corrupt open-span flag");
  }
  if (has_open == 1) {
    auto open = LoadIndex(is);
    if (!open.ok()) return open.status();
    set.SetOpen(std::move(open).value());
  }
  return set;
}

}  // namespace pqcache

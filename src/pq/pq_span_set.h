// Span-structured PQ storage for one (layer, kv-head): the middle region is
// covered by an ordered list of *closed* spans — immutable (codebook, codes)
// pairs over fixed token ranges — plus one *open* tail span that absorbs
// tokens evicted from the local window during decode.
//
// Span boundaries are pure arithmetic over the sequence layout
// (middle_begin + i * span_tokens), and each closed span's codebook is
// trained only on its own range with a seed derived from (store, span
// index). A closed span is therefore a deterministic function of the token
// prefix that produced it, which is what makes spans shareable across
// sessions bit-exactly: any session whose prompt starts with the same tokens
// would train the identical span. Shared spans are adopted by shared_ptr
// (refcounted, never copied, never mutated); private spans are built locally
// and can later be published to a PrefixRegistry.
//
// span_tokens == 0 degenerates to the pre-span layout: a single open span
// over the whole middle region (the legacy single-codebook behavior, bit
// for bit).
#ifndef PQCACHE_PQ_PQ_SPAN_SET_H_
#define PQCACHE_PQ_PQ_SPAN_SET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/pq/pq_index.h"

namespace pqcache {

/// One immutable closed span: PQ codes for tokens [begin, begin + count).
struct PQClosedSpan {
  size_t begin = 0;  ///< Absolute token id of the first encoded vector.
  std::shared_ptr<const PQIndex> index;
  bool shared = false;  ///< Adopted from a PrefixRegistry segment.

  size_t count() const { return index->size(); }
  size_t end() const { return begin + index->size(); }
};

/// Ordered closed spans + the open tail span for one (layer, kv-head).
class PQSpanSet {
 public:
  PQSpanSet() = default;

  /// Clears everything and pins the base token (middle_begin at prefill;
  /// fixed for the life of the sequence).
  void Reset(size_t base_token);

  size_t base_token() const { return base_token_; }

  /// Appends a closed span (shared or private). Spans must be adjacent and
  /// in order: the span's begin must equal the current coverage end.
  void AddClosed(size_t begin, std::shared_ptr<const PQIndex> index,
                 bool shared);

  /// Installs the open tail span starting at the current coverage end. The
  /// index may carry pre-encoded tail codes (prefill) or only a trained
  /// codebook (empty tail inheriting the previous span's centroids).
  void SetOpen(PQIndex index);

  bool has_open() const { return has_open_; }

  /// True once any span holds a trained codebook — the engine's gate for
  /// running PQ search / encoding evictions.
  bool trained() const;

  /// Total encoded vectors across closed spans and the open tail.
  size_t size() const { return closed_total_ + open_.size(); }

  const std::vector<PQClosedSpan>& closed() const { return closed_; }
  const PQIndex& open() const { return open_; }

  /// Encodes one evicted-local token into the open span.
  void AddVector(std::span<const float> vec);

  /// Allocation-free approximate top-k over every span, best first. Indices
  /// are relative to base_token(). Each span is scored with its own
  /// codebook's distance table (rebuilt in `table_scratch` per span); the
  /// scores land in one contiguous buffer so ranking spans jointly costs
  /// the same single partial top-k as the legacy one-span layout.
  void TopKInto(std::span<const float> query, size_t k,
                std::vector<float>& table_scratch,
                std::vector<float>& scores_scratch,
                std::vector<int32_t>& out) const;

  /// Logical b-bit code bytes across all spans (memory/traffic accounting).
  double LogicalCodeBytes() const;

  /// Logical code bytes held by private (non-shared) spans only.
  double PrivateLogicalCodeBytes() const;

  /// Trained codebooks resident for this store, split by ownership (the
  /// shared ones are charged once process-wide by the segment owner).
  size_t PrivateCodebooks() const;
  size_t SharedCodebooks() const;

 private:
  size_t base_token_ = 0;
  std::vector<PQClosedSpan> closed_;
  size_t closed_total_ = 0;  ///< Sum of closed span sizes.
  PQIndex open_;
  size_t open_begin_ = 0;
  bool has_open_ = false;
};

}  // namespace pqcache

#endif  // PQCACHE_PQ_PQ_SPAN_SET_H_

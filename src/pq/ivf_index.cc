#include "src/pq/ivf_index.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/kmeans/kmeans.h"
#include "src/tensor/ops.h"

namespace pqcache {

Result<IVFPQIndex> IVFPQIndex::Train(std::span<const float> vectors, size_t n,
                                     const IVFConfig& config,
                                     const KMeansOptions& kmeans,
                                     ThreadPool* pool) {
  if (config.nlist < 1) {
    return Status::InvalidArgument("IVFPQIndex: nlist must be >= 1");
  }
  if (config.nprobe < 1 || config.nprobe > config.nlist) {
    return Status::InvalidArgument(
        "IVFPQIndex: nprobe must be in [1, nlist]");
  }
  PQC_RETURN_IF_ERROR(config.pq.Validate());
  if (n == 0 || vectors.size() != n * config.pq.dim) {
    return Status::InvalidArgument("IVFPQIndex: bad training data");
  }

  IVFPQIndex index;
  index.config_ = config;

  // Coarse quantizer over full vectors.
  KMeansOptions coarse = kmeans;
  coarse.num_clusters = config.nlist;
  coarse.pool = pool;
  auto coarse_result = RunKMeans(vectors, n, config.pq.dim, coarse);
  if (!coarse_result.ok()) return coarse_result.status();
  index.coarse_centroids_ = std::move(coarse_result.value().centroids);

  // Fine quantizer (shared across lists).
  auto book = PQCodebook::Train(vectors, n, config.pq, kmeans, pool);
  if (!book.ok()) return book.status();
  index.codebook_ = std::move(book).value();

  index.list_ids_.resize(static_cast<size_t>(config.nlist));
  index.list_codes_.resize(static_cast<size_t>(config.nlist));
  return index;
}

void IVFPQIndex::Add(std::span<const float> vectors, size_t n) {
  const size_t d = config_.pq.dim;
  const size_t m = static_cast<size_t>(config_.pq.num_partitions);
  PQC_CHECK_EQ(vectors.size(), n * d);
  std::vector<uint16_t> codes(m);
  for (size_t i = 0; i < n; ++i) {
    std::span<const float> vec(vectors.data() + i * d, d);
    const int32_t list = NearestCentroid(
        vec, coarse_centroids_, static_cast<size_t>(config_.nlist), d);
    codebook_.Encode(vec, codes);
    auto& ids = list_ids_[static_cast<size_t>(list)];
    auto& lcodes = list_codes_[static_cast<size_t>(list)];
    ids.push_back(static_cast<int32_t>(total_));
    lcodes.insert(lcodes.end(), codes.begin(), codes.end());
    ++total_;
  }
}

std::vector<int32_t> IVFPQIndex::TopK(std::span<const float> query,
                                      size_t k) const {
  const size_t d = config_.pq.dim;
  const size_t m = static_cast<size_t>(config_.pq.num_partitions);
  const size_t kc = static_cast<size_t>(config_.pq.num_centroids());

  // Rank lists by coarse-centroid inner product.
  std::vector<float> coarse_scores(static_cast<size_t>(config_.nlist));
  for (int c = 0; c < config_.nlist; ++c) {
    coarse_scores[static_cast<size_t>(c)] =
        Dot(query, {coarse_centroids_.data() + static_cast<size_t>(c) * d, d});
  }
  const std::vector<int32_t> probe_order =
      TopKIndices(coarse_scores, static_cast<size_t>(config_.nprobe));

  // ADC inside the probed lists.
  std::vector<float> table(m * kc);
  codebook_.BuildInnerProductTable(query, table);
  std::vector<std::pair<float, int32_t>> candidates;
  size_t scanned = 0;
  for (int32_t list : probe_order) {
    const auto& ids = list_ids_[static_cast<size_t>(list)];
    const auto& codes = list_codes_[static_cast<size_t>(list)];
    for (size_t i = 0; i < ids.size(); ++i) {
      float score = 0.0f;
      const uint16_t* code = codes.data() + i * m;
      for (size_t p = 0; p < m; ++p) score += table[p * kc + code[p]];
      candidates.push_back({score, ids[i]});
    }
    scanned += ids.size();
  }
  last_scan_fraction_ =
      total_ == 0 ? 0.0 : static_cast<double>(scanned) / total_;

  const size_t take = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<int32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(candidates[i].second);
  return out;
}

std::vector<size_t> IVFPQIndex::ListSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(list_ids_.size());
  for (const auto& ids : list_ids_) sizes.push_back(ids.size());
  return sizes;
}

}  // namespace pqcache

// IVF-PQ index: the paper's Section 5 extension path ("other retrieval
// techniques, such as IVF ... could potentially contribute to more efficient
// LLM inference"). A coarse K-Means quantizer partitions tokens into nlist
// inverted lists; searches probe only the nprobe most promising lists and
// run ADC scoring inside them — trading a little recall for sub-linear scan
// cost at very long contexts. PQ codes are over raw vectors (the paper notes
// PQ and IVF are independent techniques often applied separately).
#ifndef PQCACHE_PQ_IVF_INDEX_H_
#define PQCACHE_PQ_IVF_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/pq/codebook.h"

namespace pqcache {

/// Shape of an IVF-PQ index.
struct IVFConfig {
  int nlist = 64;   ///< Coarse clusters (inverted lists).
  int nprobe = 8;   ///< Lists scanned per query.
  PQConfig pq;      ///< Fine quantizer inside lists.
};

/// Inverted-file index with PQ-compressed entries.
class IVFPQIndex {
 public:
  IVFPQIndex() = default;

  /// Trains the coarse quantizer and the PQ codebook on `n` row-major
  /// vectors (typically a subsample of the corpus).
  static Result<IVFPQIndex> Train(std::span<const float> vectors, size_t n,
                                  const IVFConfig& config,
                                  const KMeansOptions& kmeans,
                                  ThreadPool* pool = nullptr);

  const IVFConfig& config() const { return config_; }
  bool trained() const { return !coarse_centroids_.empty(); }
  size_t size() const { return total_; }

  /// Assigns `n` vectors to lists and PQ-encodes them. Ids are assigned
  /// sequentially in insertion order (token positions).
  void Add(std::span<const float> vectors, size_t n);

  /// Approximate top-k ids by inner product, probing `nprobe` lists whose
  /// coarse centroids best match the query. Ids are insertion-order ids.
  std::vector<int32_t> TopK(std::span<const float> query, size_t k) const;

  /// Fraction of indexed vectors ADC-scanned by the last TopK call
  /// (selectivity of the coarse quantizer; 1.0 = full scan).
  double last_scan_fraction() const { return last_scan_fraction_; }

  /// Entries per list (diagnostics; unbalanced lists hurt selectivity).
  std::vector<size_t> ListSizes() const;

 private:
  IVFConfig config_;
  std::vector<float> coarse_centroids_;  // [nlist, dim]
  PQCodebook codebook_;
  struct ListEntry {
    int32_t id;
  };
  std::vector<std::vector<int32_t>> list_ids_;        // Per-list ids.
  std::vector<std::vector<uint16_t>> list_codes_;     // Per-list PQ codes.
  size_t total_ = 0;
  mutable double last_scan_fraction_ = 0.0;
};

}  // namespace pqcache

#endif  // PQCACHE_PQ_IVF_INDEX_H_

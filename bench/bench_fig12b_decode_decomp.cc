// Fig. 12b: decode-phase time decomposition — PQ computation (centroid
// multiply + gather + top-k), LLM computation, communications (PQ codes and
// top-k KV), and the overlapped end-to-end with all optimizations.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/decode_pipeline.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 12b: decode time decomposition per output token\n"
      "(1/5 #tokens, 4K GPU cache at 0.5 hit rate)");
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();
  sys.cache_hit_rate = 0.5;

  TablePrinter table({"seq_len", "pq_compute", "llm_compute", "comm_codes",
                      "comm_topk", "comm_topk_nocache", "end_to_end",
                      "sequential"});
  for (double s : {8192.0, 16384.0, 32768.0, 65536.0, 131072.0}) {
    const DecodeTimeline tl = SimulateDecode(sys, s);
    table.AddRow({std::to_string((int)s),
                  bench::FormatSeconds(tl.pq_compute),
                  bench::FormatSeconds(tl.llm_compute),
                  bench::FormatSeconds(tl.comm_codes),
                  bench::FormatSeconds(tl.comm_topk),
                  bench::FormatSeconds(tl.comm_topk_nocache),
                  bench::FormatSeconds(tl.tpot),
                  bench::FormatSeconds(tl.tpot_sequential)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 12b: code prefetch overlaps fully; the\n"
      "GPU cache removes about half of the top-k fetch bytes; the\n"
      "overlapped end-to-end is well under the sum of components and grows\n"
      "slowly with the input length.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

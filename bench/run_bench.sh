#!/usr/bin/env bash
# Runs the tracked benchmark suites and emits their JSON reports, so the
# perf trajectory is tracked from PR to PR:
#   - bench_micro_kernels -> BENCH_micro.json   (kernel-level, google-benchmark)
#   - bench_serve         -> BENCH_serve.json   (serving-level: sessions/sec,
#                            tokens/sec, p50/p99 TPOT vs. concurrency)
#
# Usage: bench/run_bench.sh [build_dir] [micro_json] [serve_json] [args...]
#   build_dir   CMake build directory holding the bench binaries
#               (default: build)
#   micro_json  google-benchmark JSON report path (default: BENCH_micro.json)
#   serve_json  serving benchmark JSON report path (default: BENCH_serve.json)
#   args...     passed through to bench_micro_kernels; flags (-*) in the
#               serve_json position are treated as passthrough args, so the
#               pre-serve interface `run_bench.sh build out.json --flag` still
#               works
#
# Pass --check (anywhere in args) to additionally run
# bench/check_regression.py comparing the fresh reports against the
# committed BENCH_micro.json / BENCH_serve.json baselines (15% band) —
# the same gate CI's bench-regression job applies. With --check the fresh
# reports are written to BENCH_*_fresh.json so the baselines are untouched;
# without it the defaults overwrite the baselines in place (how they get
# refreshed for a PR).
#
# The scalar/avx2 benchmark pairs (BM_LutBuild, BM_GatherReduce) measure the
# same kernel through both dispatch tiers; the printed summary reports the
# AVX2 speedup over the scalar reference.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--check" ]]; then
    CHECK=1
  else
    ARGS+=("$arg")
  fi
done
set -- "${ARGS[@]+"${ARGS[@]}"}"

BUILD_DIR=${1:-build}
if [[ $CHECK -eq 1 ]]; then
  OUT=${2:-BENCH_micro_fresh.json}
  SERVE_OUT=BENCH_serve_fresh.json
else
  OUT=${2:-BENCH_micro.json}
  SERVE_OUT=BENCH_serve.json
fi
EXTRA_START=3
if [[ $# -ge 3 && ${3} != -* ]]; then
  SERVE_OUT=$3
  EXTRA_START=4
fi
BIN="$BUILD_DIR/bench_micro_kernels"
SERVE_BIN="$BUILD_DIR/bench_serve"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found; build it first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_micro_kernels -j" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_repetitions=1 "${@:EXTRA_START}"

echo
echo "Wrote $OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
times = {b["name"]: b["real_time"] for b in report["benchmarks"]
         if b.get("run_type", "iteration") == "iteration"
         and not b.get("error_occurred", False) and b["real_time"] > 0}
print("AVX2 speedup over scalar reference:")
for base in ("BM_LutBuild", "BM_GatherReduce"):
    scalar, avx2 = times.get(f"{base}/scalar"), times.get(f"{base}/avx2")
    if scalar and avx2:
        print(f"  {base:16s} {scalar / avx2:5.2f}x")
EOF
fi

if [[ ! -x "$SERVE_BIN" ]]; then
  echo "warning: $SERVE_BIN not found; skipping the serving benchmark:" >&2
  echo "  cmake --build $BUILD_DIR --target bench_serve -j" >&2
  exit 0
fi

# bench_serve also self-verifies that concurrent sessions produce tokens
# bit-identical to single-session runs; a fidelity failure exits non-zero.
"$SERVE_BIN" "$SERVE_OUT"

if [[ $CHECK -eq 1 ]]; then
  echo
  python3 bench/check_regression.py \
    --baseline BENCH_serve.json --fresh "$SERVE_OUT" \
    --micro-baseline BENCH_micro.json --micro-fresh "$OUT"
fi

#!/usr/bin/env bash
# Runs the micro-kernel benchmark suite and emits BENCH_micro.json, so the
# kernel-level perf trajectory is tracked from PR to PR.
#
# Usage: bench/run_bench.sh [build_dir] [output_json]
#   build_dir    CMake build directory holding bench_micro_kernels
#                (default: build)
#   output_json  Where to write the google-benchmark JSON report
#                (default: BENCH_micro.json in the repo root)
#
# The scalar/avx2 benchmark pairs (BM_LutBuild, BM_GatherReduce) measure the
# same kernel through both dispatch tiers; the printed summary reports the
# AVX2 speedup over the scalar reference.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
BIN="$BUILD_DIR/bench_micro_kernels"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found; build it first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_micro_kernels -j" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_repetitions=1 "${@:3}"

echo
echo "Wrote $OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
times = {b["name"]: b["real_time"] for b in report["benchmarks"]
         if b.get("run_type", "iteration") == "iteration"
         and not b.get("error_occurred", False) and b["real_time"] > 0}
print("AVX2 speedup over scalar reference:")
for base in ("BM_LutBuild", "BM_GatherReduce"):
    scalar, avx2 = times.get(f"{base}/scalar"), times.get(f"{base}/avx2")
    if scalar and avx2:
        print(f"  {base:16s} {scalar / avx2:5.2f}x")
EOF
fi

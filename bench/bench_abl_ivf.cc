// Ablation (paper Section 5 extension): flat PQ scan vs IVF-PQ probing for
// the decode-time token search. IVF trades a little recall for sub-linear
// scan cost — relevant once contexts reach hundreds of thousands of tokens.
// All numbers here are real measurements on this machine.
#include <cstdio>
#include <iostream>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/eval/report.h"
#include "src/pq/ivf_index.h"
#include "src/pq/pq_index.h"
#include "src/tensor/ops.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation: flat PQ scan vs IVF-PQ probing (Section 5 extension)\n"
      "131072 synthetic keys, d=64, m=2, b=6; real wall times");
  const size_t n = 131072, d = 64;
  Rng rng(3);
  std::vector<float> basis(8 * d);
  for (float& v : basis) v = rng.Gaussian();
  std::vector<float> data(n * d);
  for (size_t i = 0; i < n; ++i) {
    float z[8];
    for (float& v : z) v = rng.Gaussian();
    for (size_t k = 0; k < d; ++k) {
      float acc = 0.15f * rng.Gaussian();
      for (size_t j = 0; j < 8; ++j) acc += z[j] * basis[j * d + k];
      data[i * d + k] = acc;
    }
  }
  ThreadPool pool;
  KMeansOptions kmeans;
  kmeans.max_iterations = 8;

  PQConfig pq;
  pq.num_partitions = 2;
  pq.bits = 6;
  pq.dim = d;

  // Flat index.
  auto book = PQCodebook::Train({data.data(), 16384 * d}, 16384, pq, kmeans,
                                &pool);
  PQIndex flat(std::move(book).value());
  flat.AddVectors(data, n);

  // Queries near data points; exact ground truth for recall.
  const size_t k = 64;
  const int n_queries = 10;
  std::vector<std::vector<float>> queries;
  std::vector<std::set<int32_t>> truth;
  for (int qi = 0; qi < n_queries; ++qi) {
    std::vector<float> q(d);
    const size_t anchor = rng.UniformInt(n);
    for (size_t i = 0; i < d; ++i) {
      q[i] = data[anchor * d + i] + 0.05f * rng.Gaussian();
    }
    std::vector<float> exact(n);
    for (size_t i = 0; i < n; ++i) {
      exact[i] = Dot(q, {data.data() + i * d, d});
    }
    const auto top = TopKIndices(exact, k);
    truth.emplace_back(top.begin(), top.end());
    queries.push_back(std::move(q));
  }

  auto evaluate = [&](auto&& search) {
    double recall = 0;
    WallTimer timer;
    for (int qi = 0; qi < n_queries; ++qi) {
      const auto ids = search(queries[qi]);
      size_t hits = 0;
      for (int32_t id : ids) hits += truth[qi].count(id);
      recall += static_cast<double>(hits) / k;
    }
    return std::pair<double, double>(recall / n_queries,
                                     timer.ElapsedMillis() / n_queries);
  };

  TablePrinter table(
      {"index", "recall@64", "ms/query", "scan_fraction"});
  {
    const auto [recall, ms] = evaluate(
        [&](const std::vector<float>& q) { return flat.TopK(q, k); });
    table.AddRow({"flat PQ (full ADC scan)", FormatScore(recall),
                  FormatScore(ms), "1.00"});
  }
  for (int nprobe : {4, 8, 16, 32}) {
    IVFConfig config;
    config.nlist = 128;
    config.nprobe = nprobe;
    config.pq = pq;
    auto ivf = IVFPQIndex::Train({data.data(), 16384 * d}, 16384, config,
                                 kmeans, &pool);
    if (!ivf.ok()) continue;
    ivf.value().Add(data, n);
    const auto [recall, ms] = evaluate([&](const std::vector<float>& q) {
      return ivf.value().TopK(q, k);
    });
    char label[48], frac[16];
    std::snprintf(label, sizeof(label), "IVF-PQ nlist=128 nprobe=%d",
                  nprobe);
    std::snprintf(frac, sizeof(frac), "%.2f",
                  ivf.value().last_scan_fraction());
    table.AddRow({label, FormatScore(recall), FormatScore(ms), frac});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: IVF probing scans a fraction of the corpus for most\n"
      "of the flat-scan recall — the paper's suggested path to million-\n"
      "token contexts where even O(s) ADC scans become the bottleneck.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

// Fig. 10b: PQ configuration sweep (m x b) at fixed token budget on the
// HotpotQA- and Qasper-like tasks. As long as m*b is moderate, quality is
// robust; very coarse codes (8x2) degrade.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 10b: PQCache quality across PQ configurations m x b\n"
      "(1/10 #tokens; raw scores 0-100)");
  const std::vector<std::pair<int, int>> configs = {
      {1, 8}, {2, 6}, {2, 8}, {4, 4}, {4, 8}, {8, 2}};

  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.1;
  QualityHarness harness(options);

  TaskSpec hotpot = MakeHotpotLikeTask(/*seed=*/555);
  TaskSpec qasper = MakeHotpotLikeTask(/*seed=*/556);
  qasper.name = "qasper_like";
  qasper.chain = false;
  qasper.prefill_hint = 0.55f;
  qasper.full_score_scale = 44.79;

  TablePrinter table({"config(mxb)", "hotpotqa_like", "qasper_like"});
  for (const auto& [m, b] : configs) {
    std::vector<MethodSpec> methods;
    methods.push_back(MakeMethod("PQC", [m = m, b = b] {
      PQCachePolicyOptions o;
      o.num_partitions = m;
      o.bits = b;
      o.kmeans_iterations = 8;
      o.train_subsample = 8192;
      return std::make_unique<PQCachePolicy>(o);
    }));
    const TaskResult rh = harness.RunTask(hotpot, methods);
    const TaskResult rq = harness.RunTask(qasper, methods);
    char label[16];
    std::snprintf(label, sizeof(label), "%dx%d", m, b);
    table.AddRow({label, FormatScore(rh.raw[0]), FormatScore(rq.raw[0])});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 10b: all configurations with adequate\n"
      "m*b perform closely; the coarsest (8x2, only 4 centroids per\n"
      "sub-space) falls off. The paper picks 2x6 as the default.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

// Table 2 (and Appendix A): LongBench-like evaluation at 1/5 and 1/10 token
// budgets with 1/128 extra communication. Columns mirror the paper: Full,
// Oracle, H2O(C), SnapKV(C), PyramidKV(C), InfLLM, SPARQ, PQCache.
// Per-task presentation scales are the paper's Full-column scores; every
// difference between methods is measured by this harness (DESIGN.md).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void RunSetting(ThreadPool* pool, double token_ratio) {
  char title[128];
  std::snprintf(title, sizeof(title),
                "Table 2: LongBench-like | 1/%d #tokens + 1/128 extra comm",
                static_cast<int>(1.0 / token_ratio));
  bench::PrintHeader(title);
  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = token_ratio;
  options.comm_ratio = 1.0 / 128;
  QualityHarness harness(options);
  const SuiteSpec suite = MakeLongBenchLikeSuite(/*seed=*/2024);
  const SuiteResult result =
      harness.RunSuite(suite, StandardMethodSet(bench::LongBenchPQ()));
  PrintSuiteResult(result, std::cout);
}

}  // namespace
}  // namespace pqcache

int main(int argc, char** argv) {
  pqcache::ThreadPool pool;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  pqcache::bench::PrintHeader(
      "Table 2 reproduction: LongBench-like suite (synthetic analogs; see\n"
      "DESIGN.md for the dataset substitution argument). Shape to check:\n"
      "PQCache ~= Oracle >= SnapKV(C)/PyramidKV(C) > H2O(C) > SPARQ > InfLLM,"
      "\nwith PQCache's margin growing at the tighter 1/10 budget.");
  pqcache::RunSetting(&pool, 0.2);
  if (!quick) pqcache::RunSetting(&pool, 0.1);
  return 0;
}

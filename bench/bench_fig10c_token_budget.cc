// Fig. 10c: quality vs selected-token ratio (0.05 - 0.4) on the
// HotpotQA-like task at fixed 1/128 communication.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 10c: HotpotQA-like quality vs token ratio (1/128 comm)");
  auto methods = StandardMethodSet(bench::LongBenchPQ());
  const std::vector<double> ratios = {0.05, 0.1, 0.2, 0.3, 0.4};
  const TaskSpec task = MakeHotpotLikeTask(/*seed=*/555);

  std::vector<std::string> header = {"method"};
  for (double r : ratios) header.push_back(FormatScore(r));
  TablePrinter table(header);
  std::vector<std::vector<double>> scores(methods.size());
  for (double ratio : ratios) {
    EvalOptions options = bench::DefaultEvalOptions(pool);
    options.token_ratio = ratio;
    options.comm_ratio = 1.0 / 128;
    QualityHarness harness(options);
    const TaskResult r = harness.RunTask(task, methods);
    for (size_t m = 0; m < methods.size(); ++m) scores[m].push_back(r.raw[m]);
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m].label};
    for (double v : scores[m]) row.push_back(FormatScore(v));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 10c: all methods trend upward with more\n"
      "tokens; PQCache dominates the baselines across the sweep.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

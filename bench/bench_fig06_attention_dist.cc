// Fig. 6: attention-score distributions. Two sources, both real computations:
// (1) the transformer simulator's prefill attention at several (layer, head)
// positions; (2) the planted-workload decode attention. Both should be
// heavy-tailed (power-law-like): a small set of tokens holds most mass.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/kvcache/layered_kv_cache.h"
#include "src/llm/transformer.h"
#include "src/workload/generator.h"

namespace pqcache {
namespace {

struct TailStats {
  double top1 = 0, top5 = 0, top10 = 0, gini_like = 0;
};

TailStats Analyze(std::vector<float> scores) {
  std::sort(scores.begin(), scores.end(), std::greater<float>());
  TailStats st;
  const size_t n = scores.size();
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += scores[i];
    if (i + 1 == std::max<size_t>(1, n / 100)) st.top1 = acc;
    if (i + 1 == std::max<size_t>(1, n / 20)) st.top5 = acc;
    if (i + 1 == std::max<size_t>(1, n / 10)) st.top10 = acc;
  }
  // Mean rank-weighted share (1 = perfectly concentrated).
  double wsum = 0;
  for (size_t i = 0; i < n; ++i) {
    wsum += scores[i] * (n - i);
  }
  st.gini_like = 2.0 * wsum / n - 1.0;
  return st;
}

void Run() {
  bench::PrintHeader(
      "Figure 6: attention-score distributions are heavy-tailed\n"
      "mass captured by the top 1% / 5% / 10% of tokens");

  // Source 1: real transformer prefill attention.
  {
    ModelConfig config = ModelConfig::Small();
    auto model = TransformerModel::Create(config);
    KVCacheConfig kv;
    kv.num_layers = config.num_layers;
    kv.num_kv_heads = config.num_kv_heads;
    kv.store.head_dim = static_cast<size_t>(config.head_dim);
    LayeredKVCache cache(kv);
    std::vector<int32_t> prompt(1024);
    for (size_t i = 0; i < prompt.size(); ++i) {
      prompt[i] = static_cast<int32_t>((i * 131 + 7) % 1000);
    }
    // Sample positions like the paper's randomly-selected ones.
    const std::vector<std::pair<int, int>> picks = {
        {0, 1}, {1, 3}, {2, 5}, {3, 7}};
    std::vector<std::vector<float>> captured(picks.size());
    auto observer = [&](int layer, int head, size_t pos,
                        std::span<const float> scores) {
      if (pos != prompt.size() - 1) return;
      for (size_t p = 0; p < picks.size(); ++p) {
        if (picks[p].first == layer && picks[p].second == head) {
          captured[p].assign(scores.begin(), scores.end());
        }
      }
    };
    auto st = model.value()->Prefill(prompt, &cache, observer);
    (void)st;
    TablePrinter table(
        {"source", "layer", "head", "top1%", "top5%", "top10%"});
    for (size_t p = 0; p < picks.size(); ++p) {
      const TailStats t = Analyze(captured[p]);
      table.AddRow({"transformer", std::to_string(picks[p].first),
                    std::to_string(picks[p].second), FormatScore(t.top1),
                    FormatScore(t.top5), FormatScore(t.top10)});
    }

    // Source 2: planted workload (XSUM-like summarization analog).
    TaskSpec spec;
    spec.name = "xsum_like";
    spec.seq_len = 8192;
    spec.n_decode_steps = 4;
    spec.n_spans = 8;
    spec.span_len = 6;
    spec.broad_weight = 0.6f;
    spec.evidence_mass = 0.5f;
    spec.score_kind = ScoreKind::kCoverage;
    spec.seed = 1301;
    WorkloadGenerator gen(spec, 64, 4, 32);
    const InstanceLayout layout = gen.MakeLayout(0);
    for (int h = 0; h < 4; ++h) {
      const HeadData head = gen.MakeHead(layout, 0, h);
      std::span<const float> q(head.dec_queries.data(), head.dim);
      auto scores =
          TrueAttentionScores(q, head.keys, layout.seq_len, head.dim);
      const TailStats t = Analyze(std::move(scores));
      table.AddRow({"workload", "-", std::to_string(h), FormatScore(t.top1),
                    FormatScore(t.top5), FormatScore(t.top10)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nShape check vs paper: scores follow power-law-like distributions;\n"
      "a small fraction of tokens dominates -> selective attention with a\n"
      "modest top-k budget can capture most of the attention mass.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

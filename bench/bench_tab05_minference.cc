// Table 5: PQCache combined with MInference-style sparse prefill. Sparse
// prefill attention degrades the model state every decode-phase method
// inherits; we model it as reduced evidence alignment (evidence_mass) and a
// weaker prefill hint, and shorten PQCache's clustering budget (faster
// prefill = less overlap room) — the two interactions the paper identifies.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/policies/basic_policies.h"
#include "src/workload/generator.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

// Sparse prefill degrades the hidden states every decode-phase method
// inherits: evidence alignment drops and the prefill hint weakens.
SuiteSpec Sparsify(SuiteSpec suite) {
  for (TaskSpec& t : suite.tasks) {
    t.evidence_mass *= 0.82f;
    t.prefill_hint *= 0.9f;
  }
  return suite;
}

// Coverage ratios cannot express full-attention quality loss (Full always
// captures all of whatever evidence mass remains), so answer quality under
// sparse prefill is modeled as coverage x the MEASURED ratio of evidence
// mass between the degraded and clean workloads — measured per task from
// the generated instances, not assumed.
double MeasuredMassRatio(const TaskSpec& dense, const TaskSpec& sparse) {
  auto mean_mass = [](const TaskSpec& spec) {
    WorkloadGenerator gen(spec, 64, 2, 32);
    const InstanceLayout layout = gen.MakeLayout(0);
    double sum = 0;
    int count = 0;
    for (int h = 0; h < 2; ++h) {
      const HeadData head = gen.MakeHead(layout, 0, h);
      for (int step = 0; step < spec.n_decode_steps; ++step) {
        std::span<const float> q(
            head.dec_queries.data() + static_cast<size_t>(step) * head.dim,
            head.dim);
        const auto scores =
            TrueAttentionScores(q, head.keys, layout.seq_len, head.dim);
        for (int32_t t : layout.critical_per_step[step]) {
          sum += scores[static_cast<size_t>(t)];
        }
        ++count;
      }
    }
    return sum / count;
  };
  const double dense_mass = mean_mass(dense);
  if (dense_mass <= 0) return 1.0;
  return std::min(1.0, mean_mass(sparse) / dense_mass);
}

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Table 5: PQCache + MInference-style sparse prefill\n"
      "(InfiniteBench-like, 1/5 #tokens, 1/64 comm)");
  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.2;
  options.comm_ratio = 1.0 / 64;
  options.n_heads = 3;
  QualityHarness harness(options);

  const SuiteSpec dense = MakeInfiniteBenchLikeSuite(/*seed=*/4096);
  const SuiteSpec sparse = Sparsify(dense);

  // Dense prefill: Full and PQCache.
  std::vector<MethodSpec> dense_methods;
  dense_methods.push_back(MakeMethod(
      "Full", [] { return std::make_unique<FullPolicy>(); }));
  dense_methods.push_back(MakeMethod("PQC", [] {
    return std::make_unique<PQCachePolicy>(bench::InfiniteBenchPQ());
  }));
  const SuiteResult dense_result = harness.RunSuite(dense, dense_methods);

  // Sparse prefill: MInference alone (full attention over degraded state)
  // and the combination (PQCache over degraded state, fewer K-Means iters).
  std::vector<MethodSpec> sparse_methods;
  sparse_methods.push_back(MakeMethod(
      "MInf", [] { return std::make_unique<FullPolicy>(); }));
  sparse_methods.push_back(MakeMethod("Comb", [] {
    PQCachePolicyOptions o = bench::InfiniteBenchPQ();
    o.kmeans_iterations = 3;  // Faster prefill shrinks the overlap budget.
    return std::make_unique<PQCachePolicy>(o);
  }));
  const SuiteResult sparse_result = harness.RunSuite(sparse, sparse_methods);

  TablePrinter table({"Dataset", "Full", "PQC", "MInf", "Comb"});
  double avg_minf = 0, avg_comb = 0;
  for (size_t i = 0; i < dense_result.tasks.size(); ++i) {
    const double ratio =
        MeasuredMassRatio(dense.tasks[i], sparse.tasks[i]);
    const double minf = sparse_result.tasks[i].scaled[0] * ratio;
    const double comb = sparse_result.tasks[i].scaled[1] * ratio;
    avg_minf += minf;
    avg_comb += comb;
    table.AddRow({dense_result.tasks[i].task,
                  FormatScore(dense_result.tasks[i].scaled[0]),
                  FormatScore(dense_result.tasks[i].scaled[1]),
                  FormatScore(minf), FormatScore(comb)});
  }
  table.AddRow({"Average", FormatScore(dense_result.average_scaled[0]),
                FormatScore(dense_result.average_scaled[1]),
                FormatScore(avg_minf / dense_result.tasks.size()),
                FormatScore(avg_comb / dense_result.tasks.size())});
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Table 5: MInference costs several points vs\n"
      "dense prefill for everyone; PQCache composed with it loses only a\n"
      "little more (Comb ~ MInf), i.e. the methods compose.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

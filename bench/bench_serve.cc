// Concurrent serving benchmark: drives the src/serve subsystem with a
// session mix derived from the LongBench-like workload suite and sweeps the
// decode-slot count, reporting sessions/sec, aggregate tokens/sec, and
// p50/p99 TPOT vs. concurrency. Admission runs against the paper's 24 GB
// simulated GPU budget. The largest sweep also verifies the serving layer's
// fidelity claim end to end: every session's tokens must be bit-identical to
// the same request run through a lone engine (the binary fails otherwise).
//
//   build/bench_serve [output_json] [--trace trace.json] [--metrics m.json]
//     (defaults: BENCH_serve.json, BENCH_trace.json, BENCH_metrics.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/eval/report.h"
#include "src/serve/session_manager.h"
#include "src/workload/generator.h"

namespace pqcache {
namespace {

constexpr size_t kSessionsPerSweep = 16;
constexpr size_t kMaxNewTokens = 12;
// Shared-prefix scenario shape: every session's prompt opens with the same
// system-prompt/few-shot header of this many tokens.
constexpr size_t kSharedPrefixTokens = 192;
constexpr size_t kPrefixBlockTokens = 32;
constexpr size_t kPrefixScenarioSlots = 4;
// Radix scenario shape: 16 sessions whose prompts nest 4 template layers
// (layer l has 2^l variants, so sibling sessions share progressively longer
// prefixes), followed by an 8-way burst of one identical prompt. Run under
// three arms with an equal tight node budget: sharing off, the legacy flat
// registry (whole-chain copies, dedup off), and the radix registry with
// in-flight prefill dedup. Gates: radix reuses strictly more prefix bytes
// than flat, the identical-prompt burst prefills its prefix exactly once
// under dedup, and every stream stays bit-identical to its solo run.
constexpr size_t kRadixSessions = 16;
constexpr size_t kRadixLayers = 4;
constexpr size_t kRadixLayerTokens = 64;  // 2 blocks per template layer.
constexpr size_t kRadixTailTokens = 32;
constexpr size_t kRadixMaxNew = 8;
constexpr size_t kRadixSlots = 4;
constexpr size_t kRadixMaxNodes = 48;  // Equal cap for the flat / radix arms.
constexpr size_t kRadixBurstSessions = 8;
constexpr size_t kRadixBurstPromptTokens = 224;
// Checkpoint scenario shape: one long-context session suspended mid-decode,
// then resumed — resume TTFT (deserialize + one decode step) is compared
// against re-prefilling the same 8k-token prompt from scratch.
constexpr size_t kCheckpointPromptTokens = 8192;
constexpr size_t kCheckpointMaxNewTokens = 24;
constexpr size_t kCheckpointSuspendAfter = 8;
constexpr double kCheckpointMinSpeedup = 3.0;
// Antagonist scenario shape: one greedy tenant floods the decode slots with
// long decodes while an interactive tenant submits short requests behind
// them. Run once under legacy single-lane round-robin (everything in the
// default tenant) and once under weighted fair scheduling with preemption.
constexpr size_t kFairnessSlots = 4;
constexpr size_t kGreedySessions = 12;
constexpr size_t kGreedyPromptTokens = 288;
constexpr size_t kGreedyMaxNewTokens = 24;
constexpr size_t kInteractiveSessions = 4;
constexpr size_t kInteractivePromptTokens = 128;
constexpr size_t kInteractiveMaxNewTokens = 4;
constexpr uint32_t kInteractiveWeight = 4;
constexpr double kFairnessPreemptAfterSeconds = 0.010;
// Acceptance gates: the interactive tenant's p99 queue wait must improve at
// least this much over round-robin, with aggregate tokens/sec inside the
// regression band.
constexpr double kFairnessMinWaitImprovement = 2.0;
constexpr double kFairnessTokensBand = 0.15;
// Overload scenario shape: a burst of 2x the calibrated sustainable batch
// is submitted against a GPU pool sized for kRobustnessSlots sessions. Run
// once with per-request queue deadlines (set to the calibration run's wall,
// i.e. the time the server demonstrably needs for the sustainable batch)
// and once without: deadlines shed the unservable tail instead of letting
// it stretch every wait.
constexpr size_t kRobustnessSlots = 4;
constexpr size_t kRobustnessSustainable = 8;
constexpr size_t kRobustnessOverload = 2 * kRobustnessSustainable;
constexpr size_t kRobustnessPromptTokens = 96;
constexpr size_t kRobustnessMaxNew = 12;
// Observability scenario shape: the same chaotic workload (a batch tenant
// flooding the slots, a higher-priority interactive tenant preempting it,
// and one injected transient decode fault) run untraced and then traced.
// The traced run must emit a trace carrying every serving-path span kind,
// and tracing must not cost more than kObsMaxOverheadRatio in tokens/sec.
constexpr size_t kObsSlots = 4;
constexpr size_t kObsBatchSessions = 12;
constexpr size_t kObsBatchPromptTokens = 160;
constexpr size_t kObsBatchMaxNewTokens = 12;
constexpr size_t kObsInteractiveSessions = 4;
constexpr size_t kObsInteractivePromptTokens = 96;
constexpr size_t kObsInteractiveMaxNewTokens = 4;
constexpr uint32_t kObsInteractiveWeight = 4;
constexpr double kObsPreemptAfterSeconds = 0.002;
// Fire exactly one Unavailable on the 21st engine.decode_step hit: the
// session retries it (bit-identically), leaving a retry.backoff span.
constexpr uint64_t kObsFaultAfterHits = 20;
constexpr double kObsMetricsSnapshotSeconds = 0.05;
// Generous bound: span emission is tens of nanoseconds against multi-ms
// decode steps, but the runs are short enough that scheduler jitter (how
// many preemptions land) moves the needle a few percent either way.
constexpr double kObsMaxOverheadRatio = 2.0;

PQCacheEngineOptions ServeEngineOptions() {
  PQCacheEngineOptions options;
  options.model = ModelConfig::Tiny();
  options.initial_tokens = 4;
  options.local_window = 16;
  options.pq_partitions = 2;
  options.pq_bits = 5;
  options.kmeans_iterations = 6;
  options.token_ratio = 0.25;
  options.cache.capacity_tokens = 128;
  options.cache.block_tokens = 16;
  // Paper hardware: 24 GB GPU, 500 GB host (HardwareConfig defaults).
  return options;
}

// Maps one workload-layout position to a vocabulary token: background tokens
// are keyed by their document, evidence-span and question positions get
// distinct streams. Deterministic in (layout, position), so a request's
// prompt is a pure function of its task spec.
std::vector<int32_t> PromptFromLayout(const InstanceLayout& layout,
                                      int vocab_size, uint64_t seed) {
  std::vector<int32_t> prompt(layout.seq_len);
  size_t doc = 0;
  for (size_t pos = 0; pos < layout.seq_len; ++pos) {
    while (doc + 1 < layout.doc_starts.size() &&
           layout.doc_starts[doc + 1] <= pos) {
      ++doc;
    }
    uint64_t role = doc * 131 + 17;
    for (const InstanceLayout::Span& span : layout.spans) {
      if (pos >= span.begin && pos < span.begin + span.len) {
        role = 0x5EED + (pos - span.begin) * 7;
      }
    }
    if (pos >= layout.question_begin &&
        pos < layout.question_begin + layout.question_len) {
      role = 0xA5C + (pos - layout.question_begin) * 3;
    }
    const uint64_t mixed = (role ^ seed) * 0x9E3779B97F4A7C15ull + pos * 31;
    prompt[pos] = static_cast<int32_t>(mixed % vocab_size);
  }
  return prompt;
}

struct BenchRequest {
  std::string tag;
  std::vector<int32_t> prompt;
};

// One request per LongBench-like task (cycled to kSessionsPerSweep), with
// prompt lengths varied across sessions so the mix is heterogeneous.
std::vector<BenchRequest> MakeRequests(int vocab_size) {
  const SuiteSpec suite = MakeLongBenchLikeSuite(/*seed=*/2025);
  std::vector<BenchRequest> requests;
  requests.reserve(kSessionsPerSweep);
  for (size_t s = 0; s < kSessionsPerSweep; ++s) {
    TaskSpec spec = suite.tasks[s % suite.tasks.size()];
    spec.seq_len = 256 + 32 * (s % 4);  // 256..352-token prompts.
    spec.seed += s;
    WorkloadGenerator generator(spec);
    const InstanceLayout layout = generator.MakeLayout(0);
    BenchRequest request;
    request.tag = spec.name;
    request.prompt = PromptFromLayout(layout, vocab_size, spec.seed);
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<int32_t> SingleSessionReference(const PQCacheEngineOptions& opts,
                                            const std::vector<int32_t>& prompt,
                                            size_t max_new_tokens = kMaxNewTokens) {
  auto engine = PQCacheEngine::Create(opts).value();
  std::vector<int32_t> out;
  out.push_back(engine->Prefill(prompt).value());
  if (max_new_tokens > 1) {
    auto rest = engine->Generate(static_cast<int>(max_new_tokens - 1));
    out.insert(out.end(), rest.value().begin(), rest.value().end());
  }
  return out;
}

struct SweepResult {
  size_t max_sessions = 0;
  ServerStats stats;
};

// ---------------------------------------------------------------------------
// Shared-prefix scenario: a 16-session mix whose prompts all open with the
// same kSharedPrefixTokens-token system prompt, run once with prefix sharing
// off and once with it on. Reports the prefill-time and GPU-byte savings and
// gates on bit-identical tokens vs. lone-engine references in both modes.

PQCacheEngineOptions PrefixEngineOptions() {
  PQCacheEngineOptions options = ServeEngineOptions();
  // Finite PQ spans make codebooks/codes shareable; identical in both runs
  // so the comparison isolates sharing itself.
  options.pq_span_tokens = kPrefixBlockTokens;
  return options;
}

std::vector<BenchRequest> MakeSharedPrefixRequests(int vocab_size) {
  std::vector<BenchRequest> requests;
  requests.reserve(kSessionsPerSweep);
  for (size_t s = 0; s < kSessionsPerSweep; ++s) {
    const size_t len = 256 + 32 * (s % 4);  // 256..352-token prompts.
    BenchRequest request;
    request.tag = "shared_prefix_" + std::to_string(s);
    request.prompt.resize(len);
    for (size_t pos = 0; pos < len; ++pos) {
      const uint64_t role =
          pos < kSharedPrefixTokens ? pos * 131 + 29 : (s + 1) * 977 + pos * 7;
      const uint64_t mixed = role * 0x9E3779B97F4A7C15ull + pos * 31;
      request.prompt[pos] = static_cast<int32_t>(mixed % vocab_size);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

struct PrefixRunResult {
  ServerStats stats;
  size_t charged_gpu_bytes = 0;  ///< Sum of per-session admission charges
                                 ///< plus retained registry segments.
  bool fidelity = true;
};

PrefixRunResult RunPrefixScenario(
    const std::vector<BenchRequest>& requests,
    const std::vector<std::vector<int32_t>>& references, bool sharing,
    ThreadPool* pool) {
  const PQCacheEngineOptions engine_options = PrefixEngineOptions();
  ServeOptions serve;
  serve.engine = engine_options;
  serve.max_sessions = kPrefixScenarioSlots;
  serve.max_queue = kSessionsPerSweep;
  serve.pool = pool;
  serve.enable_prefix_sharing = sharing;
  serve.prefix.block_tokens = kPrefixBlockTokens;
  // Tight retention: distinct prompts publish distinct full-prompt segments,
  // but only the hot (LRU-touched) system-prompt carrier needs to stay
  // resident; cold per-session tails are evicted so the registry's resident
  // bytes stay far below the per-session savings it enables.
  serve.prefix.max_nodes = 2 * (kSharedPrefixTokens / kPrefixBlockTokens);
  auto manager = SessionManager::Create(serve).value();

  std::vector<std::vector<int32_t>> streamed(requests.size());
  for (size_t s = 0; s < requests.size(); ++s) {
    ServeRequest request;
    request.tag = requests[s].tag;
    request.prompt = requests[s].prompt;
    request.max_new_tokens = kMaxNewTokens;
    request.on_token = [&streamed, s](int32_t token, size_t) {
      streamed[s].push_back(token);
    };
    auto id = manager->Submit(std::move(request));
    PQC_CHECK(id.ok());
  }
  PQC_CHECK(manager->RunUntilDrained().ok());

  PrefixRunResult result;
  result.stats = manager->stats();
  for (const SessionRecord& record : result.stats.sessions) {
    result.charged_gpu_bytes += record.gpu_footprint_bytes;
  }
  result.charged_gpu_bytes += result.stats.prefix_resident_gpu_bytes;
  // Fidelity gate: shared or not, every session must match its lone run.
  for (size_t s = 0; s < requests.size(); ++s) {
    if (streamed[s] != references[s]) {
      std::fprintf(stderr,
                   "PREFIX FIDELITY FAILURE (sharing=%d): session %zu "
                   "diverged from its single-session run\n",
                   sharing ? 1 : 0, s);
      result.fidelity = false;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Radix scenario: nested template layers + an identical-prompt burst, under
// sharing-off / flat-registry / radix-registry arms (see the constants above
// for the shape and gates).

enum class RadixArm { kOff, kFlat, kRadix };

// Session s nests kRadixLayers template layers; layer l has 2^l variants and
// session s uses variant s >> (kRadixLayers - l), so sibling pairs share all
// four layers, quads share three, and so on. A per-session tail diverges the
// prompts after the templates.
std::vector<int32_t> MakeRadixTemplatePrompt(size_t s, int vocab_size) {
  std::vector<int32_t> prompt;
  prompt.reserve(kRadixLayers * kRadixLayerTokens + kRadixTailTokens);
  for (size_t l = 0; l < kRadixLayers; ++l) {
    const size_t variant = s >> (kRadixLayers - l);
    for (size_t pos = 0; pos < kRadixLayerTokens; ++pos) {
      const uint64_t mixed = ((l + 1) * 7919 + variant * 1021 + pos * 13) *
                                 0x9E3779B97F4A7C15ull +
                             pos;
      prompt.push_back(
          static_cast<int32_t>(mixed % static_cast<uint64_t>(vocab_size)));
    }
  }
  for (size_t pos = 0; pos < kRadixTailTokens; ++pos) {
    const uint64_t mixed =
        ((s + 1) * 557 + pos * 41) * 0x9E3779B97F4A7C15ull + pos * 3;
    prompt.push_back(
        static_cast<int32_t>(mixed % static_cast<uint64_t>(vocab_size)));
  }
  return prompt;
}

std::vector<int32_t> MakeRadixBurstPrompt(int vocab_size) {
  std::vector<int32_t> prompt(kRadixBurstPromptTokens);
  for (size_t pos = 0; pos < prompt.size(); ++pos) {
    const uint64_t mixed = (pos * 197 + 883) * 0x9E3779B97F4A7C15ull + pos;
    prompt[pos] =
        static_cast<int32_t>(mixed % static_cast<uint64_t>(vocab_size));
  }
  return prompt;
}

struct RadixRunResult {
  ServerStats stats;
  double prefill_seconds = 0;
  uint64_t reused_bytes = 0;      ///< Registry bytes attached across hits.
  size_t burst_solo_prefills = 0; ///< Burst sessions that prefilled their
                                  ///< whole prompt themselves.
  bool fidelity = true;
};

RadixRunResult RunRadixScenario(
    const std::vector<std::vector<int32_t>>& template_prompts,
    const std::vector<std::vector<int32_t>>& template_references,
    const std::vector<int32_t>& burst_prompt,
    const std::vector<int32_t>& burst_reference, RadixArm arm,
    ThreadPool* pool) {
  ServeOptions serve;
  serve.engine = PrefixEngineOptions();
  serve.max_sessions = kRadixSlots;
  serve.max_queue = kRadixSessions + kRadixBurstSessions;
  serve.pool = pool;
  serve.enable_prefix_sharing = arm != RadixArm::kOff;
  serve.prefix.block_tokens = kPrefixBlockTokens;
  serve.prefix.max_nodes = kRadixMaxNodes;
  serve.prefix.structure = arm == RadixArm::kFlat
                               ? PrefixRegistry::Structure::kFlat
                               : PrefixRegistry::Structure::kRadix;
  serve.dedup_in_flight = arm == RadixArm::kRadix;
  auto manager = SessionManager::Create(serve).value();

  RadixRunResult result;
  // Phase 1: the nested-template mix. Four users per tenant so the admission
  // lanes (and the nested per-user DRR) rotate across template groups.
  std::vector<std::vector<int32_t>> streamed(template_prompts.size());
  for (size_t s = 0; s < template_prompts.size(); ++s) {
    ServeRequest request;
    request.tag = "radix_tpl_" + std::to_string(s);
    request.identity.tenant = "templates";
    request.identity.user = "u" + std::to_string(s / 4);
    request.prompt = template_prompts[s];
    request.max_new_tokens = kRadixMaxNew;
    request.on_token = [&streamed, s](int32_t token, size_t) {
      streamed[s].push_back(token);
    };
    PQC_CHECK(manager->Submit(std::move(request)).ok());
  }
  PQC_CHECK(manager->RunUntilDrained().ok());

  // Phase 2: the 8-way identical-prompt burst, one lane (same identity).
  std::vector<std::vector<int32_t>> burst_streamed(kRadixBurstSessions);
  for (size_t s = 0; s < kRadixBurstSessions; ++s) {
    ServeRequest request;
    request.tag = "radix_burst_" + std::to_string(s);
    request.identity.tenant = "burst";
    request.prompt = burst_prompt;
    request.max_new_tokens = kRadixMaxNew;
    request.on_token = [&burst_streamed, s](int32_t token, size_t) {
      burst_streamed[s].push_back(token);
    };
    PQC_CHECK(manager->Submit(std::move(request)).ok());
  }
  PQC_CHECK(manager->RunUntilDrained().ok());

  result.stats = manager->stats();
  result.prefill_seconds = result.stats.TotalPrefillSeconds();
  result.reused_bytes = result.stats.prefix_reused_bytes;
  for (const SessionRecord& record : result.stats.sessions) {
    if (record.tag.rfind("radix_burst_", 0) == 0 &&
        record.prefix_shared_tokens == 0) {
      ++result.burst_solo_prefills;
    }
  }
  for (size_t s = 0; s < template_prompts.size(); ++s) {
    if (streamed[s] != template_references[s]) {
      std::fprintf(stderr,
                   "RADIX FIDELITY FAILURE (arm=%d): template session %zu "
                   "diverged from its single-session run\n",
                   static_cast<int>(arm), s);
      result.fidelity = false;
    }
  }
  for (size_t s = 0; s < kRadixBurstSessions; ++s) {
    if (burst_streamed[s] != burst_reference) {
      std::fprintf(stderr,
                   "RADIX FIDELITY FAILURE (arm=%d): burst session %zu "
                   "diverged from its single-session run\n",
                   static_cast<int>(arm), s);
      result.fidelity = false;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Antagonist scenario: a greedy tenant with kGreedySessions long decodes vs.
// an interactive tenant with short requests submitted behind them, on
// kFairnessSlots decode slots. Round-robin mode reproduces the legacy
// scheduler (single lane, no weights, no preemption); fair mode gives the
// interactive tenant a larger weight, a higher priority, and a preemption
// bound. Gated on the interactive tenant's p99 queue wait improving >=
// kFairnessMinWaitImprovement, aggregate tokens/sec staying inside the
// regression band, and every stream (including the preempted-then-resumed
// ones) staying bit-identical to its solo run.

struct FairnessRunResult {
  ServerStats stats;
  double interactive_p99_wait_seconds = 0;
  double greedy_p99_wait_seconds = 0;
  bool fidelity = true;
};

double TagP99WaitSeconds(const ServerStats& stats, const std::string& prefix) {
  std::vector<double> waits;
  for (const SessionRecord& record : stats.sessions) {
    if (record.generated_tokens == 0) continue;
    if (record.tag.rfind(prefix, 0) != 0) continue;
    // Preempted slices and their resumes are separate records; the wait
    // that matters for the tenant is the first seating, carried by the
    // non-resumed record.
    if (record.resumed) continue;
    waits.push_back(record.queue_wait_seconds);
  }
  if (waits.empty()) return 0;
  std::sort(waits.begin(), waits.end());
  const size_t idx =
      std::min(waits.size() - 1,
               static_cast<size_t>(std::ceil(0.99 * waits.size())) - 1);
  return waits[idx];
}

FairnessRunResult RunFairnessScenario(
    const std::vector<std::vector<int32_t>>& greedy_prompts,
    const std::vector<std::vector<int32_t>>& interactive_prompts,
    const std::vector<std::vector<int32_t>>& greedy_references,
    const std::vector<std::vector<int32_t>>& interactive_references,
    bool fair, ThreadPool* pool) {
  ServeOptions serve;
  serve.engine = ServeEngineOptions();
  serve.max_sessions = kFairnessSlots;
  serve.max_queue = kGreedySessions + kInteractiveSessions;
  serve.pool = pool;
  if (fair) serve.preempt_after_seconds = kFairnessPreemptAfterSeconds;
  auto manager = SessionManager::Create(serve).value();

  std::vector<std::vector<int32_t>> greedy_streams(greedy_prompts.size());
  std::vector<std::vector<int32_t>> interactive_streams(
      interactive_prompts.size());
  for (size_t s = 0; s < greedy_prompts.size(); ++s) {
    ServeRequest request;
    request.tag = "greedy_" + std::to_string(s);
    if (fair) request.identity.tenant = "greedy";
    request.prompt = greedy_prompts[s];
    request.max_new_tokens = kGreedyMaxNewTokens;
    request.on_token = [&greedy_streams, s](int32_t token, size_t) {
      greedy_streams[s].push_back(token);
    };
    PQC_CHECK(manager->Submit(std::move(request)).ok());
  }
  for (size_t s = 0; s < interactive_prompts.size(); ++s) {
    ServeRequest request;
    request.tag = "interactive_" + std::to_string(s);
    if (fair) {
      request.identity.tenant = "interactive";
      request.identity.weight = kInteractiveWeight;
      request.identity.priority = 1;
    }
    request.prompt = interactive_prompts[s];
    request.max_new_tokens = kInteractiveMaxNewTokens;
    request.on_token = [&interactive_streams, s](int32_t token, size_t) {
      interactive_streams[s].push_back(token);
    };
    PQC_CHECK(manager->Submit(std::move(request)).ok());
  }
  PQC_CHECK(manager->RunUntilDrained().ok());

  FairnessRunResult result;
  result.stats = manager->stats();
  result.interactive_p99_wait_seconds =
      TagP99WaitSeconds(result.stats, "interactive_");
  result.greedy_p99_wait_seconds = TagP99WaitSeconds(result.stats, "greedy_");
  for (size_t s = 0; s < greedy_prompts.size(); ++s) {
    if (greedy_streams[s] != greedy_references[s]) {
      std::fprintf(stderr,
                   "FAIRNESS FIDELITY FAILURE (fair=%d): greedy session %zu "
                   "diverged from its single-session run\n",
                   fair ? 1 : 0, s);
      result.fidelity = false;
    }
  }
  for (size_t s = 0; s < interactive_prompts.size(); ++s) {
    if (interactive_streams[s] != interactive_references[s]) {
      std::fprintf(stderr,
                   "FAIRNESS FIDELITY FAILURE (fair=%d): interactive session "
                   "%zu diverged from its single-session run\n",
                   fair ? 1 : 0, s);
      result.fidelity = false;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint scenario: suspend an 8k-token session mid-decode, resume it,
// and compare the resume TTFT (one checkpoint deserialize + one decode step)
// against re-running the transformer prefill. Gates on the resumed stream
// being bit-identical to the uninterrupted run and on the acceptance bar of
// a >= 3x resume-vs-reprefill advantage (the measured gap is orders of
// magnitude; 3x just guards against regressions).

struct CheckpointRunResult {
  double reprefill_ttft_seconds = 0;  ///< TTFT of the uninterrupted run.
  double resume_ttft_seconds = 0;     ///< TTFT of the resumed session.
  /// Wall time of the whole suspended run: prefill + decode to the suspend
  /// point + checkpoint serialization (dominated by the prefill; the
  /// serialize itself costs about as much as the resume-side deserialize).
  double suspended_run_wall_seconds = 0;
  size_t checkpoint_bytes = 0;
  bool fidelity = true;
  bool fast_enough = true;

  double Speedup() const {
    return resume_ttft_seconds > 0
               ? reprefill_ttft_seconds / resume_ttft_seconds
               : 0.0;
  }
};

CheckpointRunResult RunCheckpointScenario(ThreadPool* pool) {
  const PQCacheEngineOptions engine_options = ServeEngineOptions();
  std::vector<int32_t> prompt(kCheckpointPromptTokens);
  for (size_t pos = 0; pos < prompt.size(); ++pos) {
    const uint64_t mixed = (pos * 131 + 7) * 0x9E3779B97F4A7C15ull + pos;
    prompt[pos] =
        static_cast<int32_t>(mixed % engine_options.model.vocab_size);
  }
  ServeOptions serve;
  serve.engine = engine_options;
  serve.max_sessions = 1;
  serve.max_queue = 4;
  serve.pool = pool;
  CheckpointRunResult result;

  // Uninterrupted run: the reference token stream, and its TTFT is exactly
  // what resuming-by-re-prefill would pay.
  std::vector<int32_t> reference;
  {
    auto manager = SessionManager::Create(serve).value();
    ServeRequest request;
    request.tag = "checkpoint_reference";
    request.prompt = prompt;
    request.max_new_tokens = kCheckpointMaxNewTokens;
    request.on_token = [&reference](int32_t token, size_t) {
      reference.push_back(token);
    };
    PQC_CHECK(manager->Submit(std::move(request)).ok());
    PQC_CHECK(manager->RunUntilDrained().ok());
    result.reprefill_ttft_seconds =
        manager->stats().sessions.front().ttft_seconds;
  }

  // Suspended run: same request, suspended after kCheckpointSuspendAfter
  // streamed tokens.
  std::vector<int32_t> streamed;
  SessionCheckpoint checkpoint;
  {
    auto manager = SessionManager::Create(serve).value();
    int64_t id = -1;
    ServeRequest request;
    request.tag = "checkpoint_suspended";
    request.prompt = prompt;
    request.max_new_tokens = kCheckpointMaxNewTokens;
    request.on_token = [&](int32_t token, size_t) {
      streamed.push_back(token);
      if (streamed.size() == kCheckpointSuspendAfter) {
        PQC_CHECK(manager->Suspend(id).ok());
      }
    };
    auto submitted = manager->Submit(std::move(request));
    PQC_CHECK(submitted.ok());
    id = submitted.value();
    WallTimer run_timer;
    PQC_CHECK(manager->RunUntilDrained().ok());
    result.suspended_run_wall_seconds = run_timer.ElapsedSeconds();
    auto taken = manager->TakeSuspended(id);
    PQC_CHECK(taken.ok());
    checkpoint = std::move(taken).value();
  }
  result.checkpoint_bytes = checkpoint.engine_state.size();

  // Resume on a fresh manager (a different "server"): admission charges the
  // full footprints again, but the first step is a deserialize, not a
  // transformer pass.
  {
    auto manager = SessionManager::Create(serve).value();
    auto resumed = manager->Resume(std::move(checkpoint),
                                   [&streamed](int32_t token, size_t) {
                                     streamed.push_back(token);
                                   });
    PQC_CHECK(resumed.ok());
    PQC_CHECK(manager->RunUntilDrained().ok());
    result.resume_ttft_seconds =
        manager->stats().sessions.front().ttft_seconds;
  }

  if (streamed != reference) {
    std::fprintf(stderr,
                 "CHECKPOINT FIDELITY FAILURE: suspended+resumed stream "
                 "diverged from the uninterrupted run\n");
    result.fidelity = false;
  }
  if (result.Speedup() < kCheckpointMinSpeedup) {
    std::fprintf(stderr,
                 "CHECKPOINT SPEEDUP FAILURE: resume TTFT %.1f ms vs "
                 "re-prefill %.1f ms (%.1fx < %.1fx)\n",
                 result.resume_ttft_seconds * 1e3,
                 result.reprefill_ttft_seconds * 1e3, result.Speedup(),
                 kCheckpointMinSpeedup);
    result.fast_enough = false;
  }
  return result;
}

struct RobustnessRunResult {
  double sustainable_wall_seconds = 0;  ///< Calibration batch drain wall.
  double deadline_seconds = 0;          ///< Per-request queue deadline used.
  // Overload burst with deadlines armed / disarmed.
  uint64_t deadline_on_completed = 0;
  uint64_t deadline_on_shed = 0;
  double deadline_on_wall_seconds = 0;
  uint64_t deadline_off_completed = 0;
  uint64_t deadline_off_shed = 0;
  double deadline_off_wall_seconds = 0;
  bool sheds_under_overload = true;  ///< Deadlines shed at least one request.
  bool accounting_exact = true;      ///< Terminal buckets sum to submits;
                                     ///< both pools drain to zero.
  bool fidelity = true;  ///< Every completed stream is bit-identical.

  /// Sessions completing per second of drain wall: the useful work rate.
  /// Shedding the unservable tail must not cost completed-session rate.
  double GoodputOn() const {
    return deadline_on_wall_seconds > 0
               ? static_cast<double>(deadline_on_completed) /
                     deadline_on_wall_seconds
               : 0;
  }
  double GoodputOff() const {
    return deadline_off_wall_seconds > 0
               ? static_cast<double>(deadline_off_completed) /
                     deadline_off_wall_seconds
               : 0;
  }
  double ShedRate() const {
    return static_cast<double>(deadline_on_shed) / kRobustnessOverload;
  }
};

RobustnessRunResult RunRobustnessScenario(ThreadPool* pool) {
  PQCacheEngineOptions engine_options = ServeEngineOptions();
  // Pool sized for the decode slots plus change: admission, not slots, is
  // the bottleneck once the burst lands.
  const size_t footprint = PQCacheEngine::EstimateGpuFootprintBytes(
      engine_options, kRobustnessPromptTokens, kRobustnessMaxNew);
  engine_options.hardware.gpu_memory_bytes =
      kRobustnessSlots * footprint + footprint / 2;
  ServeOptions serve;
  serve.engine = engine_options;
  serve.max_sessions = kRobustnessSlots;
  serve.max_queue = kRobustnessOverload + 4;
  serve.pool = pool;
  RobustnessRunResult result;

  std::vector<std::vector<int32_t>> prompts(kRobustnessOverload);
  std::vector<std::vector<int32_t>> references(kRobustnessOverload);
  for (size_t i = 0; i < kRobustnessOverload; ++i) {
    prompts[i].resize(kRobustnessPromptTokens);
    for (size_t pos = 0; pos < prompts[i].size(); ++pos) {
      const uint64_t mixed =
          (pos * 197 + i * 13 + 3) * 0x9E3779B97F4A7C15ull + pos;
      prompts[i][pos] =
          static_cast<int32_t>(mixed % engine_options.model.vocab_size);
    }
    references[i] =
        SingleSessionReference(engine_options, prompts[i], kRobustnessMaxNew);
  }

  // One burst drain; `deadline` <= 0 disables shedding.
  auto run_burst = [&](size_t sessions, double deadline, uint64_t* completed,
                       uint64_t* shed) {
    auto manager = SessionManager::Create(serve).value();
    std::vector<std::vector<int32_t>> streamed(sessions);
    for (size_t i = 0; i < sessions; ++i) {
      ServeRequest request;
      request.tag = "r" + std::to_string(i);
      request.prompt = prompts[i];
      request.max_new_tokens = kRobustnessMaxNew;
      if (deadline > 0) request.queue_deadline_seconds = deadline;
      std::vector<int32_t>* sink = &streamed[i];
      request.on_token = [sink](int32_t token, size_t) {
        sink->push_back(token);
      };
      PQC_CHECK(manager->Submit(std::move(request)).ok());
    }
    WallTimer timer;
    PQC_CHECK(manager->RunUntilDrained().ok());
    const double wall = timer.ElapsedSeconds();
    const ServerStats& stats = manager->stats();
    *completed = stats.completed;
    *shed = stats.shed_deadline;
    if (stats.completed + stats.failed + stats.shed_deadline !=
            stats.submitted ||
        manager->hierarchy().gpu().used_bytes() != 0 ||
        manager->hierarchy().cpu().used_bytes() != 0) {
      std::fprintf(stderr,
                   "ROBUSTNESS ACCOUNTING FAILURE: %llu completed + %llu "
                   "failed + %llu shed != %llu submitted (or pools not "
                   "drained)\n",
                   static_cast<unsigned long long>(stats.completed),
                   static_cast<unsigned long long>(stats.failed),
                   static_cast<unsigned long long>(stats.shed_deadline),
                   static_cast<unsigned long long>(stats.submitted));
      result.accounting_exact = false;
    }
    for (const SessionRecord& record : stats.sessions) {
      const size_t slot = static_cast<size_t>(
          std::strtoul(record.tag.c_str() + 1, nullptr, 10));
      if (record.shed) {
        if (!streamed[slot].empty()) result.fidelity = false;
      } else if (!record.failed && streamed[slot] != references[slot]) {
        std::fprintf(stderr,
                     "ROBUSTNESS FIDELITY FAILURE: completed session %s "
                     "diverged from its lone-engine reference\n",
                     record.tag.c_str());
        result.fidelity = false;
      }
    }
    return wall;
  };

  // Calibration: the sustainable batch, no deadlines. Its wall is the
  // demonstrated time-to-serve for half the burst — the deadline budget.
  uint64_t calib_completed = 0;
  uint64_t calib_shed = 0;
  result.sustainable_wall_seconds = run_burst(
      kRobustnessSustainable, /*deadline=*/0, &calib_completed, &calib_shed);
  result.deadline_seconds = result.sustainable_wall_seconds;

  result.deadline_on_wall_seconds =
      run_burst(kRobustnessOverload, result.deadline_seconds,
                &result.deadline_on_completed, &result.deadline_on_shed);
  result.deadline_off_wall_seconds =
      run_burst(kRobustnessOverload, /*deadline=*/0,
                &result.deadline_off_completed, &result.deadline_off_shed);

  if (result.deadline_on_shed == 0) {
    std::fprintf(stderr,
                 "ROBUSTNESS SHED FAILURE: a 2x-overload burst shed nothing "
                 "with deadlines armed\n");
    result.sheds_under_overload = false;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Observability scenario: one workload that touches every serving path —
// queue waits (16 sessions on 4 slots), prefills, decode steps, preemption
// (checkpoint save + suspend + restore on resume) and a retried transient
// decode fault — run once untraced and once with the span tracer armed plus
// periodic metrics snapshots. Gates: the exported Chrome trace contains
// every span kind the serving stack emits, the two runs stream identical
// tokens, and tracing costs at most kObsMaxOverheadRatio in tokens/sec.

/// Span/instant names the traced run must emit, one per serving-path kind.
const char* const kObsRequiredSpans[] = {
    "queue.wait",     "session.prefill",    "session.decode",
    "session.restore", "engine.prefill",    "engine.decode_step",
    "checkpoint.save", "checkpoint.restore", "retry.backoff",
    "suspend",         "admit",              "serve.round",
    "fault.injected",
};

struct ObservabilityRunResult {
  double untraced_tokens_per_sec = 0;
  double traced_tokens_per_sec = 0;
  uint64_t preemptions = 0;    ///< Preemptions in the traced run.
  uint64_t faults_fired = 0;   ///< Injected decode faults in the traced run.
  uint64_t trace_events = 0;   ///< Events in the exported trace file.
  std::vector<std::string> missing_spans;
  bool trace_complete = true;       ///< Every required span name present.
  bool metrics_written = true;      ///< Metrics snapshot file exists.
  bool tokens_bit_identical = true; ///< Traced streams == untraced streams.
  bool overhead_within_bound = true;

  double OverheadRatio() const {
    return traced_tokens_per_sec > 0
               ? untraced_tokens_per_sec / traced_tokens_per_sec
               : 0.0;
  }
};

ObservabilityRunResult RunObservabilityScenario(
    ThreadPool* pool, const std::string& trace_path,
    const std::string& metrics_path) {
  const PQCacheEngineOptions engine_options = ServeEngineOptions();
  std::vector<std::vector<int32_t>> batch_prompts(kObsBatchSessions);
  for (size_t s = 0; s < kObsBatchSessions; ++s) {
    batch_prompts[s].resize(kObsBatchPromptTokens);
    for (size_t pos = 0; pos < kObsBatchPromptTokens; ++pos) {
      const uint64_t mixed =
          ((s + 1) * 409 + pos * 23) * 0x9E3779B97F4A7C15ull + pos;
      batch_prompts[s][pos] =
          static_cast<int32_t>(mixed % engine_options.model.vocab_size);
    }
  }
  std::vector<std::vector<int32_t>> interactive_prompts(
      kObsInteractiveSessions);
  for (size_t s = 0; s < kObsInteractiveSessions; ++s) {
    interactive_prompts[s].resize(kObsInteractivePromptTokens);
    for (size_t pos = 0; pos < kObsInteractivePromptTokens; ++pos) {
      const uint64_t mixed =
          ((s + 53) * 769 + pos * 29) * 0x9E3779B97F4A7C15ull + pos;
      interactive_prompts[s][pos] =
          static_cast<int32_t>(mixed % engine_options.model.vocab_size);
    }
  }

  ObservabilityRunResult result;
  // One drain of the chaotic mix; the fault schedule is re-armed fresh per
  // run, so both runs see the same single mid-run decode fault. A retried
  // step (and a preempted-then-resumed session) streams bit-identical
  // tokens, so the two runs' streams must match exactly.
  auto run_once = [&](bool traced, ServerStats* stats,
                      std::vector<std::vector<int32_t>>* streams) {
    FaultRule rule;
    rule.fail_after_hits = kObsFaultAfterHits;
    rule.fail_count = 1;
    FaultInjection::Global().Arm("engine.decode_step", rule);
    ServeOptions serve;
    serve.engine = engine_options;
    serve.max_sessions = kObsSlots;
    serve.max_queue = kObsBatchSessions + kObsInteractiveSessions;
    serve.pool = pool;
    serve.preempt_after_seconds = kObsPreemptAfterSeconds;
    if (traced) {
      serve.trace_path = trace_path;
      serve.metrics_path = metrics_path;
      serve.metrics_snapshot_interval_seconds = kObsMetricsSnapshotSeconds;
    }
    auto manager = SessionManager::Create(serve).value();
    streams->assign(kObsBatchSessions + kObsInteractiveSessions, {});
    for (size_t s = 0; s < kObsBatchSessions; ++s) {
      ServeRequest request;
      request.tag = "obs_batch_" + std::to_string(s);
      request.identity.tenant = "batch";
      request.prompt = batch_prompts[s];
      request.max_new_tokens = kObsBatchMaxNewTokens;
      std::vector<int32_t>* sink = &(*streams)[s];
      request.on_token = [sink](int32_t token, size_t) {
        sink->push_back(token);
      };
      PQC_CHECK(manager->Submit(std::move(request)).ok());
    }
    for (size_t s = 0; s < kObsInteractiveSessions; ++s) {
      ServeRequest request;
      request.tag = "obs_interactive_" + std::to_string(s);
      request.identity.tenant = "interactive";
      request.identity.weight = kObsInteractiveWeight;
      request.identity.priority = 1;
      request.prompt = interactive_prompts[s];
      request.max_new_tokens = kObsInteractiveMaxNewTokens;
      std::vector<int32_t>* sink = &(*streams)[kObsBatchSessions + s];
      request.on_token = [sink](int32_t token, size_t) {
        sink->push_back(token);
      };
      PQC_CHECK(manager->Submit(std::move(request)).ok());
    }
    PQC_CHECK(manager->RunUntilDrained().ok());
    *stats = manager->stats();
    const uint64_t fired =
        FaultInjection::Global().Failures("engine.decode_step");
    FaultInjection::Global().DisarmAll();
    return fired;
  };

  ServerStats untraced_stats;
  ServerStats traced_stats;
  std::vector<std::vector<int32_t>> untraced_streams;
  std::vector<std::vector<int32_t>> traced_streams;
  run_once(/*traced=*/false, &untraced_stats, &untraced_streams);
  result.faults_fired =
      run_once(/*traced=*/true, &traced_stats, &traced_streams);
  result.untraced_tokens_per_sec = untraced_stats.TokensPerSecond();
  result.traced_tokens_per_sec = traced_stats.TokensPerSecond();
  result.preemptions = traced_stats.preempted;

  if (traced_streams != untraced_streams) {
    std::fprintf(stderr,
                 "OBSERVABILITY FIDELITY FAILURE: traced run streamed "
                 "different tokens than the untraced run\n");
    result.tokens_bit_identical = false;
  }
  if (result.OverheadRatio() > kObsMaxOverheadRatio) {
    std::fprintf(stderr,
                 "OBSERVABILITY OVERHEAD FAILURE: tracing cost %.2fx in "
                 "tokens/sec (bound %.2fx)\n",
                 result.OverheadRatio(), kObsMaxOverheadRatio);
    result.overhead_within_bound = false;
  }

  // Validate the exported artifact itself, not in-memory state: the trace
  // the drain wrote to disk must carry every serving-path span kind.
  // (bench/check_trace.py re-validates schema + nesting in CI.)
  std::ifstream trace_in(trace_path);
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const std::string trace_json = trace_buf.str();
  if (!trace_in || trace_json.empty()) {
    std::fprintf(stderr, "OBSERVABILITY TRACE FAILURE: cannot read %s\n",
                 trace_path.c_str());
    result.trace_complete = false;
  } else {
    for (const char* span : kObsRequiredSpans) {
      const std::string needle = "\"name\":\"" + std::string(span) + "\"";
      if (trace_json.find(needle) == std::string::npos) {
        result.missing_spans.push_back(span);
      }
    }
    if (!result.missing_spans.empty()) {
      result.trace_complete = false;
      for (const std::string& span : result.missing_spans) {
        std::fprintf(stderr,
                     "OBSERVABILITY TRACE FAILURE: span \"%s\" absent from "
                     "%s\n",
                     span.c_str(), trace_path.c_str());
      }
    }
    for (size_t pos = trace_json.find("\"ph\":"); pos != std::string::npos;
         pos = trace_json.find("\"ph\":", pos + 5)) {
      ++result.trace_events;
    }
  }
  std::ifstream metrics_in(metrics_path);
  if (!metrics_in.good()) {
    std::fprintf(stderr, "OBSERVABILITY METRICS FAILURE: cannot read %s\n",
                 metrics_path.c_str());
    result.metrics_written = false;
  }
  return result;
}

/// Everything the JSON report records about the radix scenario.
struct RadixJson {
  double off_prefill_seconds = 0;
  double flat_prefill_seconds = 0;
  double radix_prefill_seconds = 0;
  uint64_t flat_reused_bytes = 0;
  uint64_t radix_reused_bytes = 0;
  uint64_t radix_extended_publishes = 0;
  uint64_t radix_dedup_deferrals = 0;
  size_t flat_burst_solo_prefills = 0;
  size_t radix_burst_solo_prefills = 0;
  bool radix_beats_flat_reuse = false;
  bool burst_prefills_once = false;
  bool tokens_bit_identical = false;
};

/// Everything the JSON report records about the antagonist scenario.
struct FairnessJson {
  double rr_interactive_p99_wait_seconds = 0;
  double fair_interactive_p99_wait_seconds = 0;
  double rr_greedy_p99_wait_seconds = 0;
  double fair_greedy_p99_wait_seconds = 0;
  double wait_improvement = 0;
  double rr_tokens_per_sec = 0;
  double fair_tokens_per_sec = 0;
  uint64_t preemptions = 0;
  bool tokens_bit_identical = false;
  bool meets_min_improvement = false;
  bool tokens_within_band = false;
};

void WriteJson(const std::string& path, size_t gpu_budget,
               const std::vector<SweepResult>& sweeps, bool verified,
               const PrefixRunResult& unshared,
               const PrefixRunResult& shared,
               const RadixJson& radix,
               const FairnessJson& fairness,
               const CheckpointRunResult& checkpoint,
               const RobustnessRunResult& robustness,
               const ObservabilityRunResult& obs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve\",\n");
  std::fprintf(f, "  \"gpu_budget_bytes\": %zu,\n", gpu_budget);
  std::fprintf(f, "  \"sessions_per_sweep\": %zu,\n", kSessionsPerSweep);
  std::fprintf(f, "  \"max_new_tokens\": %zu,\n", kMaxNewTokens);
  std::fprintf(f, "  \"tokens_bit_identical_to_single_session\": %s,\n",
               verified ? "true" : "false");
  std::fprintf(f, "  \"sweeps\": [\n");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const ServerStats& s = sweeps[i].stats;
    std::fprintf(f,
                 "    {\"max_sessions\": %zu, \"completed\": %llu, "
                 "\"peak_active_sessions\": %zu, \"peak_gpu_bytes\": %zu, "
                 "\"wall_seconds\": %.6f, \"sessions_per_sec\": %.3f, "
                 "\"tokens_per_sec\": %.1f, \"mean_ttft_ms\": %.3f, "
                 "\"mean_queue_wait_ms\": %.3f, \"tpot_p50_ms\": %.3f, "
                 "\"tpot_p99_ms\": %.3f, \"cache_hit_rate\": %.4f, "
                 "\"rejected\": %llu}%s\n",
                 sweeps[i].max_sessions,
                 static_cast<unsigned long long>(s.completed),
                 s.peak_active_sessions, s.peak_gpu_bytes, s.wall_seconds,
                 s.SessionsPerSecond(), s.TokensPerSecond(),
                 s.MeanTtftSeconds() * 1e3, s.MeanQueueWaitSeconds() * 1e3,
                 s.TpotPercentileSeconds(50) * 1e3,
                 s.TpotPercentileSeconds(99) * 1e3, s.AggregateCacheHitRate(),
                 static_cast<unsigned long long>(s.rejected_capacity +
                                                 s.rejected_queue_full),
                 i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  const double unshared_prefill = unshared.stats.TotalPrefillSeconds();
  const double shared_prefill = shared.stats.TotalPrefillSeconds();
  const double prefill_reduction =
      unshared_prefill > 0 ? 1.0 - shared_prefill / unshared_prefill : 0.0;
  const double gpu_reduction =
      unshared.charged_gpu_bytes > 0
          ? 1.0 - static_cast<double>(shared.charged_gpu_bytes) /
                      static_cast<double>(unshared.charged_gpu_bytes)
          : 0.0;
  std::fprintf(
      f,
      "  \"prefix_sharing\": {\n"
      "    \"sessions\": %zu, \"shared_prefix_tokens\": %zu, "
      "\"block_tokens\": %zu, \"decode_slots\": %zu,\n"
      "    \"unshared_prefill_seconds\": %.6f, "
      "\"shared_prefill_seconds\": %.6f, \"prefill_reduction\": %.4f,\n"
      "    \"unshared_charged_gpu_bytes\": %zu, "
      "\"shared_charged_gpu_bytes\": %zu, \"gpu_bytes_reduction\": %.4f,\n"
      "    \"unshared_peak_gpu_bytes\": %zu, \"shared_peak_gpu_bytes\": %zu,\n"
      "    \"prefix_hits\": %llu, \"reused_tokens\": %llu, "
      "\"tokens_bit_identical\": %s\n"
      "  },\n",
      kSessionsPerSweep, kSharedPrefixTokens, kPrefixBlockTokens,
      kPrefixScenarioSlots, unshared_prefill, shared_prefill,
      prefill_reduction, unshared.charged_gpu_bytes, shared.charged_gpu_bytes,
      gpu_reduction, unshared.stats.peak_gpu_bytes,
      shared.stats.peak_gpu_bytes,
      static_cast<unsigned long long>(shared.stats.prefix_hits),
      static_cast<unsigned long long>(shared.stats.prefix_reused_tokens),
      unshared.fidelity && shared.fidelity ? "true" : "false");
  std::fprintf(
      f,
      "  \"radix_prefix\": {\n"
      "    \"sessions\": %zu, \"template_layers\": %zu, "
      "\"burst_sessions\": %zu, \"max_nodes\": %zu,\n"
      "    \"off_prefill_seconds\": %.6f, \"flat_prefill_seconds\": %.6f, "
      "\"radix_prefill_seconds\": %.6f,\n"
      "    \"flat_reused_bytes\": %llu, \"radix_reused_bytes\": %llu, "
      "\"radix_extended_publishes\": %llu, \"radix_dedup_deferrals\": %llu,\n"
      "    \"flat_burst_solo_prefills\": %zu, "
      "\"radix_burst_solo_prefills\": %zu,\n"
      "    \"radix_beats_flat_reuse\": %s, \"burst_prefills_once\": %s, "
      "\"tokens_bit_identical\": %s\n"
      "  },\n",
      kRadixSessions, kRadixLayers, kRadixBurstSessions, kRadixMaxNodes,
      radix.off_prefill_seconds, radix.flat_prefill_seconds,
      radix.radix_prefill_seconds,
      static_cast<unsigned long long>(radix.flat_reused_bytes),
      static_cast<unsigned long long>(radix.radix_reused_bytes),
      static_cast<unsigned long long>(radix.radix_extended_publishes),
      static_cast<unsigned long long>(radix.radix_dedup_deferrals),
      radix.flat_burst_solo_prefills, radix.radix_burst_solo_prefills,
      radix.radix_beats_flat_reuse ? "true" : "false",
      radix.burst_prefills_once ? "true" : "false",
      radix.tokens_bit_identical ? "true" : "false");
  std::fprintf(
      f,
      "  \"fairness\": {\n"
      "    \"slots\": %zu, \"greedy_sessions\": %zu, "
      "\"greedy_max_new_tokens\": %zu,\n"
      "    \"interactive_sessions\": %zu, "
      "\"interactive_max_new_tokens\": %zu, \"interactive_weight\": %u, "
      "\"preempt_after_seconds\": %.3f,\n"
      "    \"rr_interactive_p99_wait_ms\": %.3f, "
      "\"fair_interactive_p99_wait_ms\": %.3f, \"wait_improvement\": %.2f,\n"
      "    \"rr_greedy_p99_wait_ms\": %.3f, "
      "\"fair_greedy_p99_wait_ms\": %.3f,\n"
      "    \"rr_tokens_per_sec\": %.1f, \"fair_tokens_per_sec\": %.1f, "
      "\"preemptions\": %llu,\n"
      "    \"tokens_bit_identical\": %s, \"meets_min_improvement\": %s, "
      "\"tokens_within_band\": %s\n"
      "  },\n",
      kFairnessSlots, kGreedySessions, kGreedyMaxNewTokens,
      kInteractiveSessions, kInteractiveMaxNewTokens, kInteractiveWeight,
      kFairnessPreemptAfterSeconds,
      fairness.rr_interactive_p99_wait_seconds * 1e3,
      fairness.fair_interactive_p99_wait_seconds * 1e3,
      fairness.wait_improvement, fairness.rr_greedy_p99_wait_seconds * 1e3,
      fairness.fair_greedy_p99_wait_seconds * 1e3,
      fairness.rr_tokens_per_sec, fairness.fair_tokens_per_sec,
      static_cast<unsigned long long>(fairness.preemptions),
      fairness.tokens_bit_identical ? "true" : "false",
      fairness.meets_min_improvement ? "true" : "false",
      fairness.tokens_within_band ? "true" : "false");
  std::fprintf(
      f,
      "  \"checkpoint\": {\n"
      "    \"prompt_tokens\": %zu, \"max_new_tokens\": %zu, "
      "\"suspend_after_tokens\": %zu,\n"
      "    \"reprefill_ttft_seconds\": %.6f, "
      "\"resume_ttft_seconds\": %.6f, \"resume_speedup\": %.2f,\n"
      "    \"checkpoint_bytes\": %zu, \"suspended_run_wall_seconds\": %.6f,\n"
      "    \"tokens_bit_identical\": %s, \"meets_min_speedup\": %s\n"
      "  },\n",
      kCheckpointPromptTokens, kCheckpointMaxNewTokens,
      kCheckpointSuspendAfter, checkpoint.reprefill_ttft_seconds,
      checkpoint.resume_ttft_seconds, checkpoint.Speedup(),
      checkpoint.checkpoint_bytes, checkpoint.suspended_run_wall_seconds,
      checkpoint.fidelity ? "true" : "false",
      checkpoint.fast_enough ? "true" : "false");
  std::fprintf(
      f,
      "  \"robustness\": {\n"
      "    \"slots\": %zu, \"sustainable_sessions\": %zu, "
      "\"overload_sessions\": %zu,\n"
      "    \"prompt_tokens\": %zu, \"max_new_tokens\": %zu, "
      "\"deadline_seconds\": %.6f,\n"
      "    \"deadline_on_completed\": %llu, \"deadline_on_shed\": %llu, "
      "\"deadline_on_goodput_sessions_per_sec\": %.3f,\n"
      "    \"deadline_off_completed\": %llu, \"deadline_off_shed\": %llu, "
      "\"deadline_off_goodput_sessions_per_sec\": %.3f,\n"
      "    \"shed_rate\": %.4f,\n"
      "    \"sheds_under_overload\": %s, \"accounting_exact\": %s, "
      "\"tokens_bit_identical\": %s\n"
      "  },\n",
      kRobustnessSlots, kRobustnessSustainable, kRobustnessOverload,
      kRobustnessPromptTokens, kRobustnessMaxNew, robustness.deadline_seconds,
      static_cast<unsigned long long>(robustness.deadline_on_completed),
      static_cast<unsigned long long>(robustness.deadline_on_shed),
      robustness.GoodputOn(),
      static_cast<unsigned long long>(robustness.deadline_off_completed),
      static_cast<unsigned long long>(robustness.deadline_off_shed),
      robustness.GoodputOff(), robustness.ShedRate(),
      robustness.sheds_under_overload ? "true" : "false",
      robustness.accounting_exact ? "true" : "false",
      robustness.fidelity ? "true" : "false");
  std::fprintf(
      f,
      "  \"observability\": {\n"
      "    \"slots\": %zu, \"batch_sessions\": %zu, "
      "\"interactive_sessions\": %zu, \"max_overhead_ratio\": %.2f,\n"
      "    \"tokens_per_sec_untraced\": %.1f, "
      "\"tokens_per_sec_traced\": %.1f, \"overhead_ratio\": %.4f,\n"
      "    \"trace_events\": %llu, \"preemptions\": %llu, "
      "\"faults_fired\": %llu,\n"
      "    \"trace_complete\": %s, \"metrics_written\": %s, "
      "\"tokens_bit_identical\": %s, \"overhead_within_bound\": %s\n"
      "  }\n}\n",
      kObsSlots, kObsBatchSessions, kObsInteractiveSessions,
      kObsMaxOverheadRatio, obs.untraced_tokens_per_sec,
      obs.traced_tokens_per_sec, obs.OverheadRatio(),
      static_cast<unsigned long long>(obs.trace_events),
      static_cast<unsigned long long>(obs.preemptions),
      static_cast<unsigned long long>(obs.faults_fired),
      obs.trace_complete ? "true" : "false",
      obs.metrics_written ? "true" : "false",
      obs.tokens_bit_identical ? "true" : "false",
      obs.overhead_within_bound ? "true" : "false");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

int Run(const std::string& out_path, const std::string& trace_path,
        const std::string& metrics_path) {
  bench::PrintHeader(
      "Concurrent serving: sessions/sec, tokens/sec, TPOT vs. concurrency\n"
      "(16-session LongBench-like mix, 24 GB simulated GPU budget)");
  ThreadPool pool;
  const PQCacheEngineOptions engine_options = ServeEngineOptions();
  const std::vector<BenchRequest> requests =
      MakeRequests(engine_options.model.vocab_size);

  const std::vector<size_t> concurrency = {1, 2, 4, 8};
  std::vector<SweepResult> sweeps;
  bool verified = true;

  TablePrinter table({"slots", "sess/s", "tok/s", "ttft_ms", "wait_ms",
                      "p50_tpot_ms", "p99_tpot_ms", "peak_sess", "peak_gpu_MB",
                      "hit_rate"});
  for (size_t slots : concurrency) {
    ServeOptions serve;
    serve.engine = engine_options;
    serve.max_sessions = slots;
    serve.max_queue = kSessionsPerSweep;
    serve.pool = &pool;
    auto manager = SessionManager::Create(serve).value();

    std::vector<std::vector<int32_t>> streamed(requests.size());
    for (size_t s = 0; s < requests.size(); ++s) {
      ServeRequest request;
      request.tag = requests[s].tag;
      request.prompt = requests[s].prompt;
      request.max_new_tokens = kMaxNewTokens;
      request.on_token = [&streamed, s](int32_t token, size_t) {
        streamed[s].push_back(token);
      };
      auto id = manager->Submit(std::move(request));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    Status run = manager->RunUntilDrained();
    if (!run.ok()) {
      std::fprintf(stderr, "scheduler failed: %s\n", run.ToString().c_str());
      return 1;
    }
    const ServerStats& stats = manager->stats();

    // Fidelity gate at the widest sweep: interleaved tokens must equal the
    // lone-engine reference for every session.
    if (slots == concurrency.back()) {
      for (size_t s = 0; s < requests.size(); ++s) {
        if (streamed[s] !=
            SingleSessionReference(engine_options, requests[s].prompt)) {
          std::fprintf(stderr,
                       "FIDELITY FAILURE: session %zu (%s) diverged from its "
                       "single-session run\n",
                       s, requests[s].tag.c_str());
          verified = false;
        }
      }
      if (stats.peak_active_sessions < slots) {
        std::fprintf(stderr,
                     "CONCURRENCY FAILURE: sustained only %zu of %zu slots\n",
                     stats.peak_active_sessions, slots);
        verified = false;
      }
    }

    char sess_s[32], tok_s[32], ttft[32], wait[32], p50[32], p99[32],
        peak_mb[32], hit[32];
    std::snprintf(sess_s, sizeof(sess_s), "%.2f", stats.SessionsPerSecond());
    std::snprintf(tok_s, sizeof(tok_s), "%.0f", stats.TokensPerSecond());
    std::snprintf(ttft, sizeof(ttft), "%.2f", stats.MeanTtftSeconds() * 1e3);
    std::snprintf(wait, sizeof(wait), "%.2f",
                  stats.MeanQueueWaitSeconds() * 1e3);
    std::snprintf(p50, sizeof(p50), "%.3f",
                  stats.TpotPercentileSeconds(50) * 1e3);
    std::snprintf(p99, sizeof(p99), "%.3f",
                  stats.TpotPercentileSeconds(99) * 1e3);
    std::snprintf(peak_mb, sizeof(peak_mb), "%.2f",
                  static_cast<double>(stats.peak_gpu_bytes) / (1 << 20));
    std::snprintf(hit, sizeof(hit), "%.3f", stats.AggregateCacheHitRate());
    table.AddRow({std::to_string(slots), sess_s, tok_s, ttft, wait, p50, p99,
                  std::to_string(stats.peak_active_sessions), peak_mb, hit});
    sweeps.push_back({slots, stats});
  }
  table.Print(std::cout);

  // Shared-prefix scenario: same mix with and without prefix sharing.
  bench::PrintHeader(
      "Prefix sharing: 16 sessions with a common 192-token system prompt\n"
      "(4 decode slots; sharing off vs. on; both gated on bit-identity)");
  const std::vector<BenchRequest> prefix_requests =
      MakeSharedPrefixRequests(engine_options.model.vocab_size);
  // One set of lone-engine references serves both runs' fidelity gates (the
  // requests and engine options are identical).
  std::vector<std::vector<int32_t>> prefix_references;
  prefix_references.reserve(prefix_requests.size());
  for (const BenchRequest& request : prefix_requests) {
    prefix_references.push_back(
        SingleSessionReference(PrefixEngineOptions(), request.prompt));
  }
  const PrefixRunResult unshared = RunPrefixScenario(
      prefix_requests, prefix_references, /*sharing=*/false, &pool);
  const PrefixRunResult shared = RunPrefixScenario(
      prefix_requests, prefix_references, /*sharing=*/true, &pool);
  verified = verified && unshared.fidelity && shared.fidelity;
  const double unshared_prefill = unshared.stats.TotalPrefillSeconds();
  const double shared_prefill = shared.stats.TotalPrefillSeconds();
  std::printf(
      "prefill time (summed): %.1f ms -> %.1f ms (%.1f%% reduction)\n"
      "charged GPU bytes:     %.2f MB -> %.2f MB (%.1f%% reduction)\n"
      "peak GPU bytes:        %.2f MB -> %.2f MB\n"
      "prefix hits: %llu/%zu sessions, %llu prompt tokens reused\n"
      "tokens bit-identical to single-session runs: %s\n",
      unshared_prefill * 1e3, shared_prefill * 1e3,
      unshared_prefill > 0
          ? 100.0 * (1.0 - shared_prefill / unshared_prefill)
          : 0.0,
      static_cast<double>(unshared.charged_gpu_bytes) / (1 << 20),
      static_cast<double>(shared.charged_gpu_bytes) / (1 << 20),
      unshared.charged_gpu_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(shared.charged_gpu_bytes) /
                               static_cast<double>(unshared.charged_gpu_bytes))
          : 0.0,
      static_cast<double>(unshared.stats.peak_gpu_bytes) / (1 << 20),
      static_cast<double>(shared.stats.peak_gpu_bytes) / (1 << 20),
      static_cast<unsigned long long>(shared.stats.prefix_hits),
      kSessionsPerSweep,
      static_cast<unsigned long long>(shared.stats.prefix_reused_tokens),
      unshared.fidelity && shared.fidelity ? "yes" : "NO");

  // Radix scenario: nested templates + identical-prompt burst under the
  // off / flat / radix arms.
  bench::PrintHeader(
      "Radix prefix sharing: 16 sessions x 4 nested template layers plus an\n"
      "8-way identical-prompt burst (sharing off vs. flat registry vs. radix\n"
      "+ in-flight dedup, equal node budgets; gated on bit-identity)");
  std::vector<std::vector<int32_t>> radix_prompts;
  radix_prompts.reserve(kRadixSessions);
  for (size_t s = 0; s < kRadixSessions; ++s) {
    radix_prompts.push_back(
        MakeRadixTemplatePrompt(s, engine_options.model.vocab_size));
  }
  const std::vector<int32_t> burst_prompt =
      MakeRadixBurstPrompt(engine_options.model.vocab_size);
  std::vector<std::vector<int32_t>> radix_references;
  radix_references.reserve(kRadixSessions);
  for (const auto& prompt : radix_prompts) {
    radix_references.push_back(SingleSessionReference(
        PrefixEngineOptions(), prompt, kRadixMaxNew));
  }
  const std::vector<int32_t> burst_reference = SingleSessionReference(
      PrefixEngineOptions(), burst_prompt, kRadixMaxNew);
  const RadixRunResult radix_off =
      RunRadixScenario(radix_prompts, radix_references, burst_prompt,
                       burst_reference, RadixArm::kOff, &pool);
  const RadixRunResult radix_flat =
      RunRadixScenario(radix_prompts, radix_references, burst_prompt,
                       burst_reference, RadixArm::kFlat, &pool);
  const RadixRunResult radix_radix =
      RunRadixScenario(radix_prompts, radix_references, burst_prompt,
                       burst_reference, RadixArm::kRadix, &pool);
  RadixJson radix;
  radix.off_prefill_seconds = radix_off.prefill_seconds;
  radix.flat_prefill_seconds = radix_flat.prefill_seconds;
  radix.radix_prefill_seconds = radix_radix.prefill_seconds;
  radix.flat_reused_bytes = radix_flat.reused_bytes;
  radix.radix_reused_bytes = radix_radix.reused_bytes;
  radix.radix_extended_publishes =
      radix_radix.stats.prefix_extended_publishes;
  radix.radix_dedup_deferrals = radix_radix.stats.prefix_dedup_deferrals;
  radix.flat_burst_solo_prefills = radix_flat.burst_solo_prefills;
  radix.radix_burst_solo_prefills = radix_radix.burst_solo_prefills;
  radix.radix_beats_flat_reuse =
      radix_radix.reused_bytes > radix_flat.reused_bytes;
  radix.burst_prefills_once = radix_radix.burst_solo_prefills == 1;
  radix.tokens_bit_identical =
      radix_off.fidelity && radix_flat.fidelity && radix_radix.fidelity;
  verified = verified && radix.tokens_bit_identical &&
             radix.radix_beats_flat_reuse && radix.burst_prefills_once;
  if (!radix.radix_beats_flat_reuse) {
    std::fprintf(stderr,
                 "RADIX REUSE FAILURE: radix reused %llu bytes <= flat's "
                 "%llu under equal budgets\n",
                 static_cast<unsigned long long>(radix.radix_reused_bytes),
                 static_cast<unsigned long long>(radix.flat_reused_bytes));
  }
  if (!radix.burst_prefills_once) {
    std::fprintf(stderr,
                 "DEDUP FAILURE: identical-prompt burst prefilled its prefix "
                 "%zu times (expected exactly 1)\n",
                 radix.radix_burst_solo_prefills);
  }
  std::printf(
      "prefill time (summed): off %.1f ms | flat %.1f ms | radix %.1f ms\n"
      "reused prefix bytes:   flat %.2f MB -> radix %.2f MB "
      "(%llu extension publishes)\n"
      "8-way burst solo prefills: flat %zu -> radix %zu "
      "(%llu dedup deferrals)\n"
      "tokens bit-identical across all arms: %s\n",
      radix.off_prefill_seconds * 1e3, radix.flat_prefill_seconds * 1e3,
      radix.radix_prefill_seconds * 1e3,
      static_cast<double>(radix.flat_reused_bytes) / (1 << 20),
      static_cast<double>(radix.radix_reused_bytes) / (1 << 20),
      static_cast<unsigned long long>(radix.radix_extended_publishes),
      radix.flat_burst_solo_prefills, radix.radix_burst_solo_prefills,
      static_cast<unsigned long long>(radix.radix_dedup_deferrals),
      radix.tokens_bit_identical ? "yes" : "NO");

  // Antagonist scenario: weighted fair scheduling + preemption vs. legacy
  // round-robin under a greedy tenant flood.
  bench::PrintHeader(
      "Multi-tenant fairness: 12 greedy long decodes vs. 4 interactive\n"
      "requests on 4 slots (round-robin vs. weighted fair + preemption)");
  std::vector<std::vector<int32_t>> greedy_prompts(kGreedySessions);
  for (size_t s = 0; s < kGreedySessions; ++s) {
    greedy_prompts[s].resize(kGreedyPromptTokens);
    for (size_t pos = 0; pos < kGreedyPromptTokens; ++pos) {
      const uint64_t mixed =
          ((s + 1) * 641 + pos * 13) * 0x9E3779B97F4A7C15ull + pos;
      greedy_prompts[s][pos] = static_cast<int32_t>(
          mixed % engine_options.model.vocab_size);
    }
  }
  std::vector<std::vector<int32_t>> interactive_prompts(kInteractiveSessions);
  for (size_t s = 0; s < kInteractiveSessions; ++s) {
    interactive_prompts[s].resize(kInteractivePromptTokens);
    for (size_t pos = 0; pos < kInteractivePromptTokens; ++pos) {
      const uint64_t mixed =
          ((s + 101) * 877 + pos * 17) * 0x9E3779B97F4A7C15ull + pos;
      interactive_prompts[s][pos] = static_cast<int32_t>(
          mixed % engine_options.model.vocab_size);
    }
  }
  std::vector<std::vector<int32_t>> greedy_references;
  greedy_references.reserve(kGreedySessions);
  for (const auto& prompt : greedy_prompts) {
    greedy_references.push_back(
        SingleSessionReference(engine_options, prompt, kGreedyMaxNewTokens));
  }
  std::vector<std::vector<int32_t>> interactive_references;
  interactive_references.reserve(kInteractiveSessions);
  for (const auto& prompt : interactive_prompts) {
    interactive_references.push_back(SingleSessionReference(
        engine_options, prompt, kInteractiveMaxNewTokens));
  }
  const FairnessRunResult rr_run =
      RunFairnessScenario(greedy_prompts, interactive_prompts,
                          greedy_references, interactive_references,
                          /*fair=*/false, &pool);
  const FairnessRunResult fair_run =
      RunFairnessScenario(greedy_prompts, interactive_prompts,
                          greedy_references, interactive_references,
                          /*fair=*/true, &pool);
  const double wait_improvement =
      fair_run.interactive_p99_wait_seconds > 0
          ? rr_run.interactive_p99_wait_seconds /
                fair_run.interactive_p99_wait_seconds
          : 0.0;
  const double fairness_tokens_ratio =
      rr_run.stats.TokensPerSecond() > 0
          ? fair_run.stats.TokensPerSecond() / rr_run.stats.TokensPerSecond()
          : 0.0;
  const bool fairness_fidelity = rr_run.fidelity && fair_run.fidelity;
  const bool fairness_meets_improvement =
      wait_improvement >= kFairnessMinWaitImprovement;
  const bool fairness_tokens_within_band =
      fairness_tokens_ratio >= 1.0 - kFairnessTokensBand;
  verified = verified && fairness_fidelity && fairness_meets_improvement &&
             fairness_tokens_within_band;
  if (!fairness_meets_improvement) {
    std::fprintf(stderr,
                 "FAIRNESS IMPROVEMENT FAILURE: interactive p99 wait %.1f ms "
                 "-> %.1f ms (%.2fx < %.1fx)\n",
                 rr_run.interactive_p99_wait_seconds * 1e3,
                 fair_run.interactive_p99_wait_seconds * 1e3, wait_improvement,
                 kFairnessMinWaitImprovement);
  }
  if (!fairness_tokens_within_band) {
    std::fprintf(stderr,
                 "FAIRNESS THROUGHPUT FAILURE: %.0f -> %.0f tokens/sec "
                 "(%.1f%% drop exceeds the %.0f%% band)\n",
                 rr_run.stats.TokensPerSecond(),
                 fair_run.stats.TokensPerSecond(),
                 (1.0 - fairness_tokens_ratio) * 100.0,
                 kFairnessTokensBand * 100.0);
  }
  std::printf(
      "interactive p99 queue wait: %.1f ms -> %.1f ms (%.1fx better)\n"
      "greedy p99 queue wait:      %.1f ms -> %.1f ms\n"
      "aggregate tokens/sec:       %.0f -> %.0f (%.1f%%)\n"
      "preemptions: %llu | tokens bit-identical (incl. preempted+resumed): "
      "%s\n",
      rr_run.interactive_p99_wait_seconds * 1e3,
      fair_run.interactive_p99_wait_seconds * 1e3, wait_improvement,
      rr_run.greedy_p99_wait_seconds * 1e3,
      fair_run.greedy_p99_wait_seconds * 1e3,
      rr_run.stats.TokensPerSecond(), fair_run.stats.TokensPerSecond(),
      (fairness_tokens_ratio - 1.0) * 100.0,
      static_cast<unsigned long long>(fair_run.stats.preempted),
      fairness_fidelity ? "yes" : "NO");

  // Checkpoint scenario: suspend/resume an 8k-token session.
  bench::PrintHeader(
      "Session checkpointing: suspend an 8k-token session mid-decode,\n"
      "resume without re-prefill (gated on bit-identity and >= 3x TTFT)");
  const CheckpointRunResult checkpoint = RunCheckpointScenario(&pool);
  verified = verified && checkpoint.fidelity && checkpoint.fast_enough;
  std::printf(
      "re-prefill TTFT: %.1f ms -> resume TTFT: %.1f ms (%.0fx faster)\n"
      "checkpoint size: %.2f MB (8k tokens, FP16 KV + PQ spans)\n"
      "suspended+resumed tokens bit-identical to uninterrupted run: %s\n",
      checkpoint.reprefill_ttft_seconds * 1e3,
      checkpoint.resume_ttft_seconds * 1e3, checkpoint.Speedup(),
      static_cast<double>(checkpoint.checkpoint_bytes) / (1 << 20),
      checkpoint.fidelity ? "yes" : "NO");

  // Overload scenario: a 2x burst with and without queue deadlines.
  bench::PrintHeader(
      "Overload shedding: a 2x-sustainable burst on a pool sized for 4\n"
      "sessions, queue deadlines on vs. off (gated on shed + bit-identity)");
  const RobustnessRunResult robustness = RunRobustnessScenario(&pool);
  verified = verified && robustness.sheds_under_overload &&
             robustness.accounting_exact && robustness.fidelity;
  std::printf(
      "calibration: %zu sessions drained in %.1f ms -> deadline budget\n"
      "deadlines on:  %llu/%zu completed, %llu shed (%.0f%% of burst), "
      "goodput %.2f sess/s\n"
      "deadlines off: %llu/%zu completed, %llu shed, goodput %.2f sess/s\n"
      "completed streams bit-identical to lone-engine runs: %s\n",
      kRobustnessSustainable, robustness.sustainable_wall_seconds * 1e3,
      static_cast<unsigned long long>(robustness.deadline_on_completed),
      kRobustnessOverload,
      static_cast<unsigned long long>(robustness.deadline_on_shed),
      robustness.ShedRate() * 100.0, robustness.GoodputOn(),
      static_cast<unsigned long long>(robustness.deadline_off_completed),
      kRobustnessOverload,
      static_cast<unsigned long long>(robustness.deadline_off_shed),
      robustness.GoodputOff(),
      robustness.fidelity ? "yes" : "NO");

  // Observability scenario: the same chaotic mix untraced vs. traced.
  bench::PrintHeader(
      "Observability: preemption + injected-fault mix, untraced vs. traced\n"
      "(gated on trace completeness, bit-identity, and tracing overhead)");
  const ObservabilityRunResult obs =
      RunObservabilityScenario(&pool, trace_path, metrics_path);
  verified = verified && obs.trace_complete && obs.metrics_written &&
             obs.tokens_bit_identical && obs.overhead_within_bound;
  std::printf(
      "tokens/sec: %.0f untraced -> %.0f traced (%.2fx overhead, bound "
      "%.2fx)\n"
      "trace: %llu events -> %s (%zu/%zu required span kinds present)\n"
      "metrics snapshot -> %s | preemptions: %llu | injected faults "
      "retried: %llu\n"
      "traced tokens bit-identical to untraced run: %s\n",
      obs.untraced_tokens_per_sec, obs.traced_tokens_per_sec,
      obs.OverheadRatio(), kObsMaxOverheadRatio,
      static_cast<unsigned long long>(obs.trace_events), trace_path.c_str(),
      std::size(kObsRequiredSpans) - obs.missing_spans.size(),
      std::size(kObsRequiredSpans), metrics_path.c_str(),
      static_cast<unsigned long long>(obs.preemptions),
      static_cast<unsigned long long>(obs.faults_fired),
      obs.tokens_bit_identical ? "yes" : "NO");

  const ServerStats& first = sweeps.front().stats;
  const ServerStats& last = sweeps.back().stats;
  std::printf(
      "\n%zu -> %zu decode slots: %.0f -> %.0f tokens/sec aggregate, mean\n"
      "queue wait %.1f -> %.1f ms, p99 TPOT %.2f -> %.2f ms. Tokens at\n"
      "%zu-way concurrency verified bit-identical to single-session runs:\n"
      "%s\n",
      sweeps.front().max_sessions, sweeps.back().max_sessions,
      first.TokensPerSecond(), last.TokensPerSecond(),
      first.MeanQueueWaitSeconds() * 1e3, last.MeanQueueWaitSeconds() * 1e3,
      first.TpotPercentileSeconds(99) * 1e3,
      last.TpotPercentileSeconds(99) * 1e3, sweeps.back().max_sessions,
      verified ? "yes" : "NO");

  FairnessJson fairness;
  fairness.rr_interactive_p99_wait_seconds =
      rr_run.interactive_p99_wait_seconds;
  fairness.fair_interactive_p99_wait_seconds =
      fair_run.interactive_p99_wait_seconds;
  fairness.rr_greedy_p99_wait_seconds = rr_run.greedy_p99_wait_seconds;
  fairness.fair_greedy_p99_wait_seconds = fair_run.greedy_p99_wait_seconds;
  fairness.wait_improvement = wait_improvement;
  fairness.rr_tokens_per_sec = rr_run.stats.TokensPerSecond();
  fairness.fair_tokens_per_sec = fair_run.stats.TokensPerSecond();
  fairness.preemptions = fair_run.stats.preempted;
  fairness.tokens_bit_identical = fairness_fidelity;
  fairness.meets_min_improvement = fairness_meets_improvement;
  fairness.tokens_within_band = fairness_tokens_within_band;
  WriteJson(out_path, engine_options.hardware.gpu_memory_bytes, sweeps,
            verified, unshared, shared, radix, fairness, checkpoint,
            robustness, obs);
  return verified ? 0 : 1;
}

}  // namespace
}  // namespace pqcache

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  std::string trace = "BENCH_trace.json";
  std::string metrics = "BENCH_metrics.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics = argv[++i];
    } else {
      out = arg;
    }
  }
  return pqcache::Run(out, trace, metrics);
}

// Fig. 12c: the quality/latency trade-off of K-Means iterations. More Lloyd
// iterations -> better codebooks -> better retrieval quality, but clustering
// that exceeds the GPU compute time blocks the pipeline and inflates TT2T.
// The adaptive budget sits at the latency-optimal point.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/prefill_pipeline.h"
#include "src/sched/profiling.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 12c: HotpotQA-like score and TT2T vs K-Means iterations\n"
      "(1/10 #tokens; TT2T from the overlapped prefill pipeline at s=8192)");
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();
  CalibrateClusteringModel(&sys, pool);
  const int adaptive = AdaptiveIterations(sys, 8192);

  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.1;
  QualityHarness harness(options);
  TaskSpec task = MakeHotpotLikeTask(/*seed=*/555);
  // Tight margins so codebook quality is the binding constraint (the
  // paper's sweep also operates where retrieval precision matters).
  task.evidence_mass = 0.40f;
  task.success_threshold = 0.60f;
  task.n_instances = 6;

  TablePrinter table({"iterations", "score", "tt2t"});
  std::vector<int> sweep = {1, 2, 5, 10, 25};
  for (int iters : sweep) {
    std::vector<MethodSpec> methods;
    methods.push_back(MakeMethod("PQC", [iters] {
      PQCachePolicyOptions o = bench::LongBenchPQ();
      o.kmeans_iterations = iters;
      return std::make_unique<PQCachePolicy>(o);
    }));
    const TaskResult r = harness.RunTask(task, methods);
    const PrefillTimeline tl = SimulatePrefill(sys, 8192, iters);
    // TT2T = wait for the slowest layer's clustering + one decode sweep.
    const double decode_sweep = 0.02;
    const double tt2t =
        std::max(tl.ttft, tl.end_to_end) + decode_sweep;
    table.AddRow({std::to_string(iters), FormatScore(r.raw[0]),
                  bench::FormatSeconds(tt2t)});
  }
  // Adaptive row.
  {
    std::vector<MethodSpec> methods;
    methods.push_back(MakeMethod("PQC", [adaptive] {
      PQCachePolicyOptions o = bench::LongBenchPQ();
      o.kmeans_iterations = adaptive;
      return std::make_unique<PQCachePolicy>(o);
    }));
    const TaskResult r = harness.RunTask(task, methods);
    const PrefillTimeline tl = SimulatePrefill(sys, 8192, adaptive);
    table.AddRow({"adaptive(" + std::to_string(adaptive) + ")",
                  FormatScore(r.raw[0]),
                  bench::FormatSeconds(std::max(tl.ttft, tl.end_to_end) +
                                       0.02)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 12c: score rises with iterations and\n"
      "saturates; TT2T is flat while clustering hides under compute and\n"
      "then climbs once it no longer fits — the adaptive budget achieves\n"
      "near-minimum TT2T at already-good quality.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

// Fig. 10a: GSM8k chain-of-thought accuracy vs token budget. Reasoning steps
// depend on earlier steps' conclusions — importance emerges during decode,
// so dynamic retrieval (PQCache/Oracle) beats fixed compressed caches as
// budgets shrink.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 10a: GSM8k CoT accuracy vs #tokens budget (1/128 comm)");
  auto methods = StandardMethodSet(bench::LongBenchPQ());
  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4};

  std::vector<std::string> header = {"method"};
  for (double r : ratios) header.push_back("ratio " + FormatScore(r));
  TablePrinter table(header);
  std::vector<std::vector<double>> scores(methods.size());
  for (double ratio : ratios) {
    EvalOptions options = bench::DefaultEvalOptions(pool);
    options.token_ratio = ratio;
    options.comm_ratio = 1.0 / 128;
    QualityHarness harness(options);
    const TaskResult r =
        harness.RunTask(MakeGSM8kCoTTask(/*seed=*/777), methods);
    for (size_t m = 0; m < methods.size(); ++m) {
      scores[m].push_back(r.raw[m]);
    }
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m].label};
    for (double v : scores[m]) row.push_back(FormatScore(v));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 10a: every method improves with budget;\n"
      "PQCache tracks Oracle across budgets and beats the fixed-cache\n"
      "baselines, especially at small budgets.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

#!/usr/bin/env python3
"""Chrome trace-event validator: checks that a trace file emitted by the
span tracer (src/obs/trace.h) is well-formed and Perfetto-loadable.

Checks
  - top level is {"traceEvents": [...]} (or a bare event array)
  - every event carries name/ph/ts/pid/tid; ph is one of X B E i I C M
  - 'X' complete events carry a non-negative dur
  - timestamps are non-decreasing in file order (the exporter globally
    sorts by start time so parents precede children)
  - 'X' events nest properly per (pid, tid) track: a span may contain or
    follow a sibling, never partially overlap it
  - 'B'/'E' duration events balance per (pid, tid) track
  - with --require, every named span/instant appears at least once

Usage:
  bench/check_trace.py TRACE.json [--require NAME [NAME ...]]

Exit code 0 = valid, 1 = malformed trace or missing required span,
2 = bad input (unreadable file / not JSON).
"""

import argparse
import collections
import json
import sys

ALLOWED_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        return doc["traceEvents"]
    print(f"error: {path} is neither an event array nor an object with a "
          "traceEvents array", file=sys.stderr)
    sys.exit(2)


def check(events, failures):
    names = set()
    last_ts = None
    # Per-track state: open 'B' stack depth and an end-time stack for 'X'
    # nesting (events arrive sorted by start; a new span must start after
    # every already-closed ancestor ended, i.e. partial overlap is an error).
    begin_depth = collections.Counter()
    nest_stacks = collections.defaultdict(list)
    counts = collections.Counter()

    for i, ev in enumerate(events):
        where = f"event #{i}"
        if not isinstance(ev, dict):
            failures.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            failures.append(f"{where}: bad or missing ph {ph!r}")
            continue
        counts[ph] += 1
        for field in ("name", "ts", "pid", "tid"):
            if field not in ev:
                failures.append(f"{where} ({ph}): missing {field!r}")
        name = ev.get("name")
        if isinstance(name, str):
            names.add(name)
            where = f"event #{i} ({name!r})"
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        if last_ts is not None and ts < last_ts:
            failures.append(f"{where}: ts {ts} precedes prior event's "
                            f"{last_ts} (file order must be sorted)")
        last_ts = ts
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                failures.append(f"{where}: X event needs a dur >= 0, "
                                f"got {dur!r}")
                continue
            stack = nest_stacks[track]
            while stack and stack[-1] <= ts:
                stack.pop()
            if stack and ts + dur > stack[-1]:
                failures.append(
                    f"{where}: span [{ts}, {ts + dur}] partially overlaps "
                    f"an enclosing span ending at {stack[-1]} on track "
                    f"{track} (must nest)")
            stack.append(ts + dur)
        elif ph == "B":
            begin_depth[track] += 1
        elif ph == "E":
            if begin_depth[track] == 0:
                failures.append(f"{where}: E without matching B on track "
                                f"{track}")
            else:
                begin_depth[track] -= 1

    for track, depth in sorted(begin_depth.items()):
        if depth != 0:
            failures.append(f"track {track}: {depth} unclosed B event(s)")
    return names, counts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require", nargs="+", default=[],
                        metavar="NAME",
                        help="span/instant names that must appear")
    args = parser.parse_args()

    events = load_events(args.trace)
    failures = []
    names, counts = check(events, failures)
    for required in args.require:
        if required not in names:
            failures.append(f"required span {required!r} absent from trace")

    tracks = len({(e.get("pid"), e.get("tid")) for e in events
                  if isinstance(e, dict)})
    phase_summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"{args.trace}: {len(events)} events, {len(names)} distinct names, "
          f"{tracks} tracks ({phase_summary})")

    if failures:
        print(f"\nFAIL ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures[:50]:
            print(f"  - {failure}", file=sys.stderr)
        if len(failures) > 50:
            print(f"  ... and {len(failures) - 50} more", file=sys.stderr)
        return 1
    print("trace is well-formed" +
          (f"; all {len(args.require)} required spans present"
           if args.require else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

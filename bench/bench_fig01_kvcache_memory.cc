// Fig. 1: KVCache memory size and theoretical CPU->GPU transfer latency over
// PCIe Gen 5 for varying batch sizes, model sizes, and sequence lengths.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/llm/model_config.h"
#include "src/memory/link.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 1: KVCache memory and PCIe-5 transfer latency\n"
      "(7B = Llama-2-7B MHA profile, 13B = Llama-2-13B; FP16 K+V)");
  const LinkModel pcie5 = LinkModel::PCIe5x16();
  const std::vector<ModelProfile> models = {ModelProfile::Llama2_7B(),
                                            ModelProfile::Llama2_13B()};
  const std::vector<double> batch_sizes = {8, 32, 128};
  const std::vector<double> seq_lens = {4096, 16384, 65536, 131072};

  TablePrinter table({"model", "batch", "seq_len", "kv_size_gb",
                      "pcie5_transfer_s"});
  for (const auto& model : models) {
    for (double bs : batch_sizes) {
      for (double s : seq_lens) {
        const double bytes = model.KVBytes(s, bs);
        char kv[32], tr[32];
        std::snprintf(kv, sizeof(kv), "%.1f", bytes / 1e9);
        std::snprintf(tr, sizeof(tr), "%.2f",
                      pcie5.TransferSeconds(bytes));
        table.AddRow({model.name, FormatScore(bs), FormatScore(s), kv, tr});
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper anchor: a 7B model at 128K tokens, batch 128 needs ~TB-scale\n"
      "KVCache, exceeding any single-node GPU memory -> offloading is\n"
      "mandatory and transfer latency is the bottleneck PQCache attacks.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

// Fig. 9: Needle-in-a-Haystack. A single strong fact is planted at varying
// depths of haystacks of varying lengths; each cell reports retrieval
// success (%). Expect Full/Oracle/SnapKV(C)/PyramidKV(C)/PQCache mostly
// green (100), InfLLM mostly red, H2O partially failing, SPARQ weak at 1-dim
// communication budgets.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 9: Needle-in-a-Haystack (success %, rows = context length,\n"
      "columns = needle depth; 1/10 #tokens, 1/64 extra comm)");
  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.1;
  options.comm_ratio = 1.0 / 64;
  options.n_heads = 2;
  QualityHarness harness(options);
  auto methods = StandardMethodSet(bench::LongBenchPQ());

  const std::vector<size_t> lengths = {8192, 16384, 32768, 65536, 131072};
  const std::vector<double> depths = {0.0, 0.25, 0.5, 0.75, 1.0};

  // results[m][len][depth]
  std::vector<std::vector<std::vector<double>>> results(
      methods.size(),
      std::vector<std::vector<double>>(lengths.size(),
                                       std::vector<double>(depths.size())));
  for (size_t li = 0; li < lengths.size(); ++li) {
    for (size_t di = 0; di < depths.size(); ++di) {
      TaskSpec spec = MakeNeedleTask(lengths[li], depths[di],
                                     /*seed=*/9000 + li * 17 + di);
      spec.n_instances = 1;
      const TaskResult r = harness.RunTask(spec, methods);
      for (size_t m = 0; m < methods.size(); ++m) {
        results[m][li][di] = r.raw[m];
      }
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    std::printf("\n--- %s ---\n", methods[m].label.c_str());
    std::vector<std::string> header = {"len\\depth"};
    for (double d : depths) header.push_back(FormatScore(d));
    TablePrinter table(header);
    for (size_t li = 0; li < lengths.size(); ++li) {
      std::vector<std::string> row = {std::to_string(lengths[li])};
      for (size_t di = 0; di < depths.size(); ++di) {
        row.push_back(FormatScore(results[m][li][di]));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nShape check vs paper Fig. 9: PQCache/SnapKV(C)/Oracle retrieve the\n"
      "needle nearly everywhere; InfLLM misses it in most cells because the\n"
      "needle is rarely a block representative; H2O degrades at depths the\n"
      "greedy accumulation has already evicted.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

// Micro benchmarks (google-benchmark) for the kernels on PQCache's decode
// critical path: K-Means clustering, PQ encode, ADC scoring, and top-k.
//
// The BM_LutBuild / BM_GatherReduce pairs run the same kernel once per SIMD
// tier (scalar reference vs AVX2 dispatch) at the paper-scale ADC shape
// (d=128, m=8, 2^b=256, n=32k), so one run of bench/run_bench.sh captures
// the before/after speedup in BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/kmeans/kmeans.h"
#include "src/pq/pq_index.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace pqcache {
namespace {

std::vector<float> RandomData(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * d);
  for (float& v : out) v = rng.Gaussian();
  return out;
}

// ADC shape from the acceptance benchmark: d=128, m=8, b=8 (kc=256), n=32k.
constexpr size_t kLutDim = 128;
constexpr size_t kLutPartitions = 8;
constexpr size_t kLutCentroids = 256;
constexpr size_t kAdcTokens = 32768;

void BM_LutBuild(benchmark::State& state, simd::SimdLevel level) {
  const simd::KernelTable& kernels = simd::KernelsFor(level);
  if (kernels.level != level) {
    state.SkipWithError("requested SIMD tier unavailable on this CPU");
    return;
  }
  const size_t sub = kLutDim / kLutPartitions;
  const auto centroids =
      RandomData(kLutPartitions * kLutCentroids, sub, 11);
  const auto query = RandomData(1, kLutDim, 12);
  std::vector<float> table(kLutPartitions * kLutCentroids);
  for (auto _ : state) {
    // Blocked centroid-matrix x query product, one MatVec per partition —
    // identical to PQCodebook::BuildInnerProductTable's loop.
    for (size_t p = 0; p < kLutPartitions; ++p) {
      kernels.matvec(centroids.data() + p * kLutCentroids * sub,
                     query.data() + p * sub, table.data() + p * kLutCentroids,
                     kLutCentroids, sub);
    }
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(state.iterations() * kLutPartitions *
                          kLutCentroids);
}
BENCHMARK_CAPTURE(BM_LutBuild, scalar, simd::SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_LutBuild, avx2, simd::SimdLevel::kAvx2);

void BM_GatherReduce(benchmark::State& state, simd::SimdLevel level) {
  const simd::KernelTable& kernels = simd::KernelsFor(level);
  if (kernels.level != level) {
    state.SkipWithError("requested SIMD tier unavailable on this CPU");
    return;
  }
  const auto table = RandomData(kLutPartitions, kLutCentroids, 13);
  Rng rng(14);
  std::vector<uint16_t> codes(kAdcTokens * kLutPartitions);
  for (auto& c : codes) {
    c = static_cast<uint16_t>(rng.UniformInt(kLutCentroids));
  }
  std::vector<float> scores(kAdcTokens);
  for (auto _ : state) {
    kernels.gather_reduce_scores(table.data(), kLutCentroids, codes.data(),
                                 kAdcTokens, kLutPartitions, scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * kAdcTokens);
}
BENCHMARK_CAPTURE(BM_GatherReduce, scalar, simd::SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_GatherReduce, avx2, simd::SimdLevel::kAvx2);

void BM_KMeansIteration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32;
  const auto data = RandomData(n, d, 1);
  for (auto _ : state) {
    KMeansOptions opts;
    opts.num_clusters = 64;
    opts.max_iterations = 1;
    opts.tolerance = 0.0;
    auto r = RunKMeans(data, n, d, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeansIteration)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_PQEncode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 64;
  const auto data = RandomData(n, d, 2);
  PQConfig config;
  config.num_partitions = 2;
  config.bits = 6;
  config.dim = d;
  KMeansOptions kmeans;
  kmeans.max_iterations = 5;
  const size_t n_train = std::min<size_t>(n, 8192);
  auto book = PQCodebook::Train({data.data(), n_train * d}, n_train, config,
                                kmeans);
  std::vector<uint16_t> codes(n * 2);
  for (auto _ : state) {
    book.value().EncodeBatch(data, n, codes);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PQEncode)->Arg(4096)->Arg(32768);

void BM_ADCSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 64;
  const auto data = RandomData(n, d, 3);
  PQConfig config;
  config.num_partitions = 2;
  config.bits = 6;
  config.dim = d;
  KMeansOptions kmeans;
  kmeans.max_iterations = 5;
  const size_t n_train = std::min<size_t>(n, 8192);
  auto book = PQCodebook::Train({data.data(), n_train * d}, n_train, config,
                                kmeans);
  PQIndex index(std::move(book).value());
  index.AddVectors(data, n);
  const auto query = RandomData(1, d, 4);
  std::vector<float> scores(n);
  std::vector<float> table(2 * 64);
  for (auto _ : state) {
    index.ApproxInnerProductsWithTable(query, table, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ADCSearch)->Arg(8192)->Arg(32768)->Arg(131072);

void BM_ExactScores(benchmark::State& state) {
  // The brute-force alternative ADC replaces: full q.K inner products.
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 64;
  const auto data = RandomData(n, d, 5);
  const auto query = RandomData(1, d, 6);
  std::vector<float> scores(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      scores[i] = Dot(query, {data.data() + i * d, d});
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactScores)->Arg(8192)->Arg(32768)->Arg(131072);

void BM_TopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> scores(n);
  for (float& v : scores) v = rng.Gaussian();
  for (auto _ : state) {
    auto top = TopKIndices(scores, n / 10);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopK)->Arg(8192)->Arg(131072);

}  // namespace
}  // namespace pqcache

BENCHMARK_MAIN();

#!/usr/bin/env python3
"""Benchmark-regression gate: compares a fresh benchmark report against the
checked-in baseline and fails when a tracked metric regressed beyond the
tolerance band.

Tracked metrics
  BENCH_serve.json:
    - tokens_per_sec per sweep (higher is better)
    - prefix_sharing.prefill_reduction (higher is better; absolute band)
    - prefix_sharing.tokens_bit_identical / tokens_bit_identical_to_single_
      session must be true in the FRESH report (hard gate, no tolerance)
    - radix_prefix.*: bit-identity across the off/flat/radix arms, the
      radix-beats-flat reused-bytes comparison, and the burst-prefills-once
      dedup gate are hard gates evaluated inside the fresh report
    - fairness.*: bit-identity, the >= 2x interactive p99 queue-wait
      improvement and the tokens/sec band vs. round-robin are hard gates
      evaluated inside the fresh report; wait_improvement is additionally
      compared against the baseline with a doubled band
    - robustness.*: shedding under overload, exact terminal accounting, and
      bit-identity are hard gates evaluated inside the fresh report; the
      deadlines-on goodput is additionally compared against the baseline
      like a throughput metric
    - observability.*: trace completeness (every serving-path span kind in
      the exported Chrome trace), metrics-snapshot presence, bit-identity of
      the traced run, and the in-bench tracing-overhead bound are hard gates
      evaluated inside the fresh report; the untraced tokens/sec is
      additionally compared against the baseline like a throughput metric
  BENCH_micro.json (optional, google-benchmark format):
    - real_time per benchmark (lower is better)

Usage:
  bench/check_regression.py --baseline BENCH_serve.json --fresh fresh.json \
      [--micro-baseline BENCH_micro.json --micro-fresh fresh_micro.json] \
      [--tolerance 0.15]

Exit code 0 = within tolerance, 1 = regression (or fidelity failure),
2 = bad input. Improvements are reported but never fail the gate; refresh
the committed baselines in the PR that earns them.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_serve(baseline, fresh, tolerance, failures):
    base_sweeps = {s["max_sessions"]: s for s in baseline.get("sweeps", [])}
    fresh_sweeps = {s["max_sessions"]: s for s in fresh.get("sweeps", [])}
    for slots, base in sorted(base_sweeps.items()):
        if slots not in fresh_sweeps:
            failures.append(f"serve: sweep max_sessions={slots} missing from "
                            "fresh report")
            continue
        base_tps = base.get("tokens_per_sec", 0.0)
        fresh_tps = fresh_sweeps[slots].get("tokens_per_sec", 0.0)
        if base_tps <= 0:
            continue
        ratio = fresh_tps / base_tps
        status = "OK"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            failures.append(
                f"serve: tokens_per_sec at {slots} slots fell "
                f"{(1.0 - ratio) * 100.0:.1f}% ({base_tps:.0f} -> "
                f"{fresh_tps:.0f}, tolerance {tolerance * 100.0:.0f}%)")
        print(f"  serve tokens/s @ {slots:2d} slots: {base_tps:8.0f} -> "
              f"{fresh_tps:8.0f}  ({(ratio - 1.0) * 100.0:+5.1f}%)  {status}")

    if not fresh.get("tokens_bit_identical_to_single_session", False):
        failures.append("serve: fidelity gate failed "
                        "(tokens_bit_identical_to_single_session is false)")

    base_prefix = baseline.get("prefix_sharing")
    fresh_prefix = fresh.get("prefix_sharing")
    if base_prefix and fresh_prefix:
        if not fresh_prefix.get("tokens_bit_identical", False):
            failures.append("serve: prefix-sharing fidelity gate failed")
        base_red = base_prefix.get("prefill_reduction", 0.0)
        fresh_red = fresh_prefix.get("prefill_reduction", 0.0)
        # Absolute band for a ratio-of-times metric: a baseline of 0.45 with
        # a 0.15 tolerance fails below 0.30.
        status = "OK"
        if fresh_red < base_red - tolerance:
            status = "REGRESSION"
            failures.append(
                f"serve: prefix-sharing prefill_reduction fell from "
                f"{base_red:.2f} to {fresh_red:.2f} "
                f"(tolerance band {tolerance:.2f})")
        print(f"  prefix prefill_reduction:    {base_red:8.2f} -> "
              f"{fresh_red:8.2f}  {status}")

    base_radix = baseline.get("radix_prefix")
    fresh_radix = fresh.get("radix_prefix")
    if fresh_radix:
        # Hard gates, no tolerance, evaluated inside the fresh report: the
        # radix arm must reuse strictly more prefix bytes than the flat arm
        # under equal node budgets, the 8-way identical-prompt burst must
        # prefill its prefix exactly once with in-flight dedup on, and every
        # arm's streams must stay bit-identical to solo sessions.
        if not fresh_radix.get("tokens_bit_identical", False):
            failures.append("serve: radix-prefix fidelity gate failed")
        if not fresh_radix.get("radix_beats_flat_reuse", False):
            failures.append("serve: radix arm did not reuse more prefix "
                            "bytes than the flat arm under equal budgets")
        if not fresh_radix.get("burst_prefills_once", False):
            failures.append(
                "serve: identical-prompt burst prefilled more than once "
                f"({fresh_radix.get('radix_burst_solo_prefills')} solo "
                "prefills; dedup gate expects exactly 1)")
        print(f"  radix reused bytes:          "
              f"{fresh_radix.get('flat_reused_bytes', 0):8d} (flat) -> "
              f"{fresh_radix.get('radix_reused_bytes', 0):8d} (radix)")
        print(f"  radix burst solo prefills:   "
              f"{fresh_radix.get('flat_burst_solo_prefills', 0):8d} (flat) -> "
              f"{fresh_radix.get('radix_burst_solo_prefills', 0):8d} (radix)")
    elif base_radix:
        failures.append("serve: radix_prefix section missing from fresh "
                        "report")

    base_fair = baseline.get("fairness")
    fresh_fair = fresh.get("fairness")
    if fresh_fair:
        # Hard gates, no tolerance: streams (including preempted+resumed
        # sessions) must stay bit-identical, the interactive tenant's p99
        # queue wait must beat round-robin by the acceptance floor (>= 2x,
        # embedded in the bench), and aggregate tokens/sec must stay inside
        # the bench's own band vs. the round-robin run of the same report
        # (same machine, same process — immune to runner speed).
        if not fresh_fair.get("tokens_bit_identical", False):
            failures.append("serve: fairness fidelity gate failed")
        if not fresh_fair.get("meets_min_improvement", False):
            failures.append("serve: fairness interactive p99 queue-wait "
                            "improvement fell below the acceptance floor")
        if not fresh_fair.get("tokens_within_band", False):
            failures.append("serve: fairness aggregate tokens/sec fell "
                            "outside the band vs. round-robin")
        base_improvement = (base_fair or {}).get("wait_improvement", 0.0)
        fresh_improvement = fresh_fair.get("wait_improvement", 0.0)
        status = "OK"
        # Cross-run latency ratios are noisier than throughput; use a
        # doubled band on top of the hard >= 2x floor above.
        if base_improvement > 0 and \
                fresh_improvement < base_improvement * (1.0 - 2 * tolerance):
            status = "REGRESSION"
            failures.append(
                f"serve: fairness wait_improvement fell from "
                f"{base_improvement:.1f}x to {fresh_improvement:.1f}x "
                f"(band {2 * tolerance * 100.0:.0f}%)")
        print(f"  fairness wait_improvement:   {base_improvement:7.1f}x -> "
              f"{fresh_improvement:7.1f}x  {status}")
        print(f"  fairness interactive p99 wait: "
              f"{(base_fair or {}).get('fair_interactive_p99_wait_ms', 0.0):8.1f} -> "
              f"{fresh_fair.get('fair_interactive_p99_wait_ms', 0.0):8.1f} ms "
              f"({fresh_fair.get('preemptions', 0)} preemptions)")
    elif base_fair:
        failures.append("serve: fairness section missing from fresh report")

    base_ckpt = baseline.get("checkpoint")
    fresh_ckpt = fresh.get("checkpoint")
    if fresh_ckpt:
        # Hard gates, no tolerance, independent of the baseline: a resumed
        # session must stream the same tokens as an uninterrupted one, and
        # resuming must beat re-prefill by the acceptance floor (the bench
        # embeds the >= 3x bar, far below the measured gap, so runner noise
        # cannot trip it).
        if not fresh_ckpt.get("tokens_bit_identical", False):
            failures.append("serve: checkpoint resume fidelity gate failed")
        if not fresh_ckpt.get("meets_min_speedup", False):
            failures.append("serve: checkpoint resume_speedup fell below the "
                            "acceptance floor")
        base_speedup = (base_ckpt or {}).get("resume_speedup", 0.0)
        fresh_speedup = fresh_ckpt.get("resume_speedup", 0.0)
        print(f"  checkpoint resume_speedup:   {base_speedup:7.0f}x -> "
              f"{fresh_speedup:7.0f}x  "
              f"{'OK' if fresh_ckpt.get('meets_min_speedup') else 'FAIL'}")
    elif base_ckpt:
        # A fresh report that silently lost the section must not skip the
        # gates unnoticed.
        failures.append("serve: checkpoint section missing from fresh report")

    base_robust = baseline.get("robustness")
    fresh_robust = fresh.get("robustness")
    if fresh_robust:
        # Hard gates, no tolerance, evaluated inside the fresh report: an
        # overloaded server with deadlines armed must actually shed, every
        # terminal disposition must be accounted (completed + failed + shed
        # == submitted with both pools drained), and every completed stream
        # must stay bit-identical to its lone-engine run.
        if not fresh_robust.get("sheds_under_overload", False):
            failures.append("serve: robustness shed gate failed (2x overload "
                            "with deadlines shed nothing)")
        if not fresh_robust.get("accounting_exact", False):
            failures.append("serve: robustness accounting gate failed "
                            "(terminal buckets or pool drain inexact)")
        if not fresh_robust.get("tokens_bit_identical", False):
            failures.append("serve: robustness fidelity gate failed")
        base_goodput = (base_robust or {}).get(
            "deadline_on_goodput_sessions_per_sec", 0.0)
        fresh_goodput = fresh_robust.get(
            "deadline_on_goodput_sessions_per_sec", 0.0)
        status = "OK"
        if base_goodput > 0:
            ratio = fresh_goodput / base_goodput
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures.append(
                    f"serve: robustness deadline-on goodput fell "
                    f"{(1.0 - ratio) * 100.0:.1f}% ({base_goodput:.1f} -> "
                    f"{fresh_goodput:.1f} sess/s, tolerance "
                    f"{tolerance * 100.0:.0f}%)")
        print(f"  robustness goodput (on):     {base_goodput:8.1f} -> "
              f"{fresh_goodput:8.1f}  {status}")
        print(f"  robustness shed under load:  "
              f"{fresh_robust.get('deadline_on_shed', 0)}"
              f"/{fresh_robust.get('overload_sessions', 0)} requests "
              f"({fresh_robust.get('shed_rate', 0.0) * 100.0:.0f}%)")
    elif base_robust:
        failures.append("serve: robustness section missing from fresh report")

    base_obs = baseline.get("observability")
    fresh_obs = fresh.get("observability")
    if fresh_obs:
        # Hard gates, no tolerance, evaluated inside the fresh report: the
        # traced run must emit every serving-path span kind, write a metrics
        # snapshot, stream the same tokens as the untraced run, and tracing
        # must stay under the bench's own overhead bound (both runs share
        # one process, so the ratio is immune to runner speed).
        if not fresh_obs.get("trace_complete", False):
            failures.append("serve: observability trace-completeness gate "
                            "failed (required span kind(s) absent)")
        if not fresh_obs.get("metrics_written", False):
            failures.append("serve: observability metrics snapshot was not "
                            "written")
        if not fresh_obs.get("tokens_bit_identical", False):
            failures.append("serve: observability fidelity gate failed "
                            "(traced run diverged from untraced run)")
        if not fresh_obs.get("overhead_within_bound", False):
            failures.append("serve: observability tracing-overhead gate "
                            "failed")
        base_tps = (base_obs or {}).get("tokens_per_sec_untraced", 0.0)
        fresh_tps = fresh_obs.get("tokens_per_sec_untraced", 0.0)
        status = "OK"
        if base_tps > 0:
            ratio = fresh_tps / base_tps
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures.append(
                    f"serve: observability untraced tokens/sec fell "
                    f"{(1.0 - ratio) * 100.0:.1f}% ({base_tps:.0f} -> "
                    f"{fresh_tps:.0f}, tolerance {tolerance * 100.0:.0f}%)")
        print(f"  observability tokens/s:      {base_tps:8.0f} -> "
              f"{fresh_tps:8.0f}  {status}")
        print(f"  observability overhead:      "
              f"{fresh_obs.get('overhead_ratio', 0.0):8.2f}x "
              f"({fresh_obs.get('trace_events', 0)} trace events, "
              f"{fresh_obs.get('preemptions', 0)} preemptions, "
              f"{fresh_obs.get('faults_fired', 0)} faults retried)")
    elif base_obs:
        failures.append("serve: observability section missing from fresh "
                        "report")


def check_micro(baseline, fresh, tolerance, failures):
    def times(report):
        return {
            b["name"]: b["real_time"]
            for b in report.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"
            and not b.get("error_occurred", False) and b.get("real_time", 0) > 0
        }

    base_times, fresh_times = times(baseline), times(fresh)
    for name, base_t in sorted(base_times.items()):
        fresh_t = fresh_times.get(name)
        if fresh_t is None:
            failures.append(f"micro: {name} missing from fresh report")
            continue
        ratio = fresh_t / base_t
        status = "OK"
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            failures.append(
                f"micro: {name} slowed {(ratio - 1.0) * 100.0:.1f}% "
                f"({base_t:.0f}ns -> {fresh_t:.0f}ns, tolerance "
                f"{tolerance * 100.0:.0f}%)")
        print(f"  micro {name:40s} {base_t:10.0f} -> {fresh_t:10.0f} ns "
              f"({(ratio - 1.0) * 100.0:+6.1f}%)  {status}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_serve.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated serve report")
    parser.add_argument("--micro-baseline", help="checked-in BENCH_micro.json")
    parser.add_argument("--micro-fresh", help="freshly generated micro report")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative regression (default 0.15)")
    args = parser.parse_args()

    failures = []
    print(f"bench-regression gate (tolerance {args.tolerance * 100.0:.0f}%)")
    check_serve(load(args.baseline), load(args.fresh), args.tolerance,
                failures)
    if args.micro_baseline and args.micro_fresh:
        check_micro(load(args.micro_baseline), load(args.micro_fresh),
                    args.tolerance, failures)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("(if this regression is expected and accepted, refresh the "
              "committed baseline JSONs in this PR)", file=sys.stderr)
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Fig. 10d: quality vs extra-communication budget (1/128 - 1/16 of the keys'
// bytes) at a fixed 1/5 token budget. SPARQ and InfLLM climb as they may
// move more data per step; PQCache is already saturated at 1/128 because PQ
// codes compress the ranking signal so effectively.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/policies/infllm_policy.h"
#include "src/policies/pqcache_policy.h"
#include "src/policies/sparq_policy.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Figure 10d: HotpotQA-like quality vs extra communication\n"
      "(1/5 #tokens; columns = comm as a fraction of key bytes)");
  const std::vector<double> comms = {1.0 / 128, 1.0 / 64, 1.0 / 32,
                                     1.0 / 16};
  const TaskSpec task = MakeHotpotLikeTask(/*seed=*/555);

  std::vector<MethodSpec> methods;
  methods.push_back(MakeMethod(
      "SPARQ", [] { return std::make_unique<SPARQPolicy>(); }));
  methods.push_back(MakeMethod(
      "InfLLM", [] { return std::make_unique<InfLLMPolicy>(); }));
  methods.push_back(MakeMethod("PQCache", [] {
    return std::make_unique<PQCachePolicy>(bench::LongBenchPQ());
  }));

  std::vector<std::string> header = {"method"};
  for (double c : comms) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "1/%d", static_cast<int>(1.0 / c));
    header.push_back(buf);
  }
  TablePrinter table(header);
  std::vector<std::vector<double>> scores(methods.size());
  for (double comm : comms) {
    EvalOptions options = bench::DefaultEvalOptions(pool);
    options.token_ratio = 0.2;
    options.comm_ratio = comm;
    QualityHarness harness(options);
    const TaskResult r = harness.RunTask(task, methods);
    for (size_t m = 0; m < methods.size(); ++m) scores[m].push_back(r.raw[m]);
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m].label};
    for (double v : scores[m]) row.push_back(FormatScore(v));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 10d: SPARQ/InfLLM improve with more\n"
      "communication (more query dims / more representatives); PQCache is\n"
      "flat — 1/128 of key bytes in PQ codes already suffices.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

// Fig. 11a: Time To Second Token (TT2T) vs sequence length for every
// method. TT2T captures prefill plus the first decode step — for PQCache
// that includes waiting for each layer's (overlapped) K-Means. H2O, which
// cannot use FlashAttention, OOMs past a length. The clustering model is
// calibrated from real K-Means measurements on this machine.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/method_latency.h"
#include "src/sched/profiling.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 11a: Time To 2nd Token vs sequence length\n"
      "(8B profile, RTX-4090-class GPU model, PCIe 1.0 x16; real K-Means fit)");
  ThreadPool pool;
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();
  CalibrateClusteringModel(&sys, &pool);

  const std::vector<MethodKind> methods = {
      MethodKind::kH2O,    MethodKind::kSnapKV, MethodKind::kPyramidKV,
      MethodKind::kSPARQ,  MethodKind::kInfLLM, MethodKind::kPQCache};
  const std::vector<double> lengths = {8192, 16384, 32768, 65536, 131072};

  std::vector<std::string> header = {"method"};
  for (double s : lengths) header.push_back(std::to_string((int)s));
  TablePrinter table(header);
  for (MethodKind kind : methods) {
    std::vector<std::string> row = {MethodKindName(kind)};
    for (double s : lengths) {
      const auto t = MethodTT2T(sys, kind, s);
      row.push_back(t ? bench::FormatSeconds(*t) : "OOM");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 11a: H2O OOMs at long inputs (no\n"
      "FlashAttention); SnapKV/PyramidKV and PQCache have the lowest TT2T\n"
      "(PQCache's clustering hides under prefill compute); SPARQ pays its\n"
      "serial per-step fetch; InfLLM pays block-management setup.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

// Fig. 11c: TPOT vs GPU cache size (0 - 8K tokens), plus a token-level cache
// of 4K for the block-vs-token ablation. Hit rates are MEASURED by replaying
// a real PQCache selection trace through the BlockCache; TPOT then comes
// from the decode pipeline simulation at the measured hit rate, plus a
// per-entry cache-management overhead term (token-level granularity manages
// 128x more entries — the reason the paper rejects it).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "bench/cache_trace.h"
#include "src/cache/block_cache.h"
#include "src/eval/report.h"
#include "src/sched/decode_pipeline.h"

namespace pqcache {
namespace {

double MeasureHitRate(const bench::CacheTrace& trace,
                      const BlockCacheOptions& options,
                      size_t k_cache_blocks) {
  if (options.capacity_tokens == 0) return 0.0;
  BlockCache cache(options);
  std::vector<bool> hits;
  for (const auto& step : trace.steps) {
    cache.Probe(step, &hits);
    cache.AdmitTopBlocks(step, k_cache_blocks);
  }
  return cache.stats().hit_rate();
}

void Run() {
  bench::PrintHeader(
      "Figure 11c: TPOT vs GPU cache size (s=32768, 1/5 #tokens)\n"
      "hit rates measured on a real PQCache selection trace");
  const bench::CacheTrace trace =
      bench::BuildCacheTrace(32768, 96, 0.2, /*seed=*/22);
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();

  // Per-entry cache management cost on the critical path (lookup + update
  // bookkeeping per managed entry per layer).
  constexpr double kPerEntrySeconds = 1e-7;
  const double k_tokens = sys.token_ratio * 32768;

  struct Config {
    const char* label;
    size_t capacity;
    size_t block;
  };
  const std::vector<Config> configs = {
      {"no cache", 0, 128},        {"2K block-level", 2048, 128},
      {"4K block-level", 4096, 128}, {"8K block-level", 8192, 128},
      {"4K token-level", 4096, 1}};

  TablePrinter table({"cache", "hit_rate", "mgmt_overhead", "tpot"});
  double tpot_nocache = 0.0;
  for (const Config& config : configs) {
    BlockCacheOptions options;
    options.capacity_tokens = config.capacity;
    options.block_tokens = config.block;
    options.policy = EvictionPolicy::kLRU;
    const size_t k_cache = std::max<size_t>(
        1, config.capacity / std::max<size_t>(config.block, 1));
    const double hit = MeasureHitRate(trace, options, k_cache);
    sys.cache_hit_rate = hit;
    const DecodeTimeline tl = SimulateDecode(sys, 32768);
    // Management: entries touched per layer = selected tokens / block size.
    const double entries = k_tokens / std::max<size_t>(config.block, 1);
    const double mgmt = config.capacity == 0
                            ? 0.0
                            : sys.model.num_layers * entries *
                                  kPerEntrySeconds;
    const double tpot = tl.tpot + mgmt;
    if (config.capacity == 0) tpot_nocache = tpot;
    char hitbuf[16];
    std::snprintf(hitbuf, sizeof(hitbuf), "%.3f", hit);
    table.AddRow({config.label, hitbuf, bench::FormatSeconds(mgmt),
                  bench::FormatSeconds(tpot)});
  }
  table.Print(std::cout);
  SystemModel probe = sys;
  probe.cache_hit_rate = MeasureHitRate(
      trace, {4096, 128, EvictionPolicy::kLRU}, 32);
  const double tpot4k = SimulateDecode(probe, 32768).tpot +
                        sys.model.num_layers * (k_tokens / 128) *
                            kPerEntrySeconds;
  probe.cache_hit_rate = MeasureHitRate(
      trace, {8192, 128, EvictionPolicy::kLRU}, 64);
  const double tpot8k = SimulateDecode(probe, 32768).tpot +
                        sys.model.num_layers * (k_tokens / 128) *
                            kPerEntrySeconds;
  std::printf(
      "\nTPOT reduction vs no cache: 4K block-level %.1f%%, 8K block-level "
      "%.1f%%\n",
      100.0 * (1.0 - tpot4k / tpot_nocache),
      100.0 * (1.0 - tpot8k / tpot_nocache));
  std::printf(
      "Shape check vs paper Fig. 11c: the block cache cuts TPOT by roughly\n"
      "a quarter to a third at 4K-8K capacity; the token-level cache loses\n"
      "its gains to per-entry management overhead.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

#!/usr/bin/env bash
# Static-analysis gate: Clang thread-safety analysis + clang-tidy.
#
# Two independent passes, both warning-clean by policy:
#
#   1. Thread-safety build: every file in src/ compiled with
#      clang++ -Wthread-safety -Werror=thread-safety, which turns the
#      PQ_GUARDED_BY / PQ_REQUIRES annotations (src/common/thread_annotations.h)
#      into compile errors when a guarded field is touched without its lock.
#      Also rejects any PQ_NO_THREAD_SAFETY_ANALYSIS escape that is not
#      accompanied by a justification comment on an adjacent line.
#
#   2. clang-tidy over the CMake compile database with the repo .clang-tidy
#      (bugprone-*, concurrency-*, performance-*, modernize-use-override),
#      WarningsAsErrors: '*'. Results are cached per file keyed on the file's
#      content hash + the .clang-tidy hash, so unchanged files are free on
#      re-runs.
#
# This container ships GCC only; when no clang toolchain is found the script
# prints how to get one and exits 0 so local tier-1 flows never break — the
# real gate is the static-analysis CI job, which installs clang. Override
# binary discovery with CLANGXX= / CLANG_TIDY=.
#
# Usage:
#   bench/run_static_analysis.sh                 # full gate
#   bench/run_static_analysis.sh --fix-dry-run   # show clang-tidy fixits,
#                                                # change nothing
# Environment:
#   CLANGXX, CLANG_TIDY   explicit binaries
#   BUILD_DIR             configured build tree (default: build-tidy)
#   TIDY_CACHE_DIR        cache location (default: $BUILD_DIR/tidy-cache)
#   STATIC_ANALYSIS_LOG   warning log (default: $BUILD_DIR/static_analysis.log)
set -u -o pipefail

cd "$(dirname "$0")/.."

FIX_DRY_RUN=0
for arg in "$@"; do
  case "$arg" in
    --fix-dry-run) FIX_DRY_RUN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

find_tool() {  # find_tool <env-value> <name> [versioned names...]
  local explicit="$1"; shift
  if [ -n "$explicit" ]; then
    command -v "$explicit" && return 0
    echo "requested tool '$explicit' not found" >&2
    return 1
  fi
  local cand
  for cand in "$@"; do
    command -v "$cand" && return 0
  done
  return 1
}

# An explicitly requested binary that is absent is a misconfiguration (e.g.
# the CI job's clang install broke) and must fail loudly; only unset env vars
# fall through to the graceful GCC-only skip below.
CLANGXX_REQ="${CLANGXX:-}"
CLANG_TIDY_REQ="${CLANG_TIDY:-}"
CLANGXX="$(find_tool "$CLANGXX_REQ" \
    clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16)" || {
  if [ -n "$CLANGXX_REQ" ]; then
    echo "run_static_analysis: CLANGXX='$CLANGXX_REQ' requested but not" \
         "found; refusing to silently skip the gate" >&2
    exit 2
  fi
  CLANGXX=""
}
CLANG_TIDY="$(find_tool "$CLANG_TIDY_REQ" \
    clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17 \
    clang-tidy-16)" || {
  if [ -n "$CLANG_TIDY_REQ" ]; then
    echo "run_static_analysis: CLANG_TIDY='$CLANG_TIDY_REQ' requested but" \
         "not found; refusing to silently skip the gate" >&2
    exit 2
  fi
  CLANG_TIDY=""
}

BUILD_DIR="${BUILD_DIR:-build-tidy}"
LOG="${STATIC_ANALYSIS_LOG:-$BUILD_DIR/static_analysis.log}"
mkdir -p "$BUILD_DIR"
: > "$LOG"
FAILED=0

# --- Pass 0: no unexplained thread-safety escapes on analyzed code. -------
# Every PQ_NO_THREAD_SAFETY_ANALYSIS use outside its definition must carry a
# justification comment on the same or the preceding line.
while IFS=: read -r file line _; do
  [ -z "$file" ] && continue
  # A hit on line 1 has no preceding line; address 0 is invalid in sed.
  if [ "$line" -gt 1 ]; then
    context="$(sed -n "$((line - 1))p;${line}p" "$file")"
  else
    context="$(sed -n "${line}p" "$file")"
  fi
  if ! printf '%s\n' "$context" | grep -q '//'; then
    echo "$file:$line: PQ_NO_THREAD_SAFETY_ANALYSIS without a justification" \
         "comment" | tee -a "$LOG"
    FAILED=1
  fi
done < <(grep -rn 'PQ_NO_THREAD_SAFETY_ANALYSIS' src \
           --include='*.h' --include='*.cc' \
         | grep -v 'src/common/thread_annotations.h' || true)

if [ -z "$CLANGXX" ] && [ -z "$CLANG_TIDY" ]; then
  echo "run_static_analysis: no clang++ or clang-tidy on PATH; clang passes"
  echo "  skipped (the static-analysis CI job runs the real gate; locally"
  echo "  install clang + clang-tidy or set CLANGXX=/CLANG_TIDY=)."
  if [ "$FAILED" -ne 0 ]; then
    echo "static analysis FAILED (escape audit); full log: $LOG"
    exit 1
  fi
  exit 0
fi

# --- Pass 1: clang -Wthread-safety build. ---------------------------------
if [ -n "$CLANGXX" ]; then
  echo "== thread-safety build ($CLANGXX) =="
  TS_FLAGS=(-std=c++20 -I. -fsyntax-only -Wall -Wextra
            -Wthread-safety -Werror=thread-safety)
  for f in $(find src -name '*.cc' | sort); do
    extra=()
    case "$f" in
      # Mirrors CMakeLists.txt: the AVX2 kernels live in one TU compiled
      # with the ISA flags; dispatch keeps the binary portable.
      */simd_avx2.cc) extra=(-mavx2 -mfma) ;;
    esac
    if ! "$CLANGXX" "${TS_FLAGS[@]}" "${extra[@]}" "$f" 2>>"$LOG"; then
      echo "thread-safety: FAILED on $f"
      FAILED=1
    fi
  done
  [ "$FAILED" -eq 0 ] && echo "thread-safety: clean"
else
  echo "run_static_analysis: clang++ not found; skipping thread-safety build."
fi

# --- Pass 2: clang-tidy over the compile database. ------------------------
if [ -n "$CLANG_TIDY" ]; then
  echo "== clang-tidy ($CLANG_TIDY) =="
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    # A plain configure is enough: CMAKE_EXPORT_COMPILE_COMMANDS is on in
    # CMakeLists.txt. Tests/benches need no generated sources to be indexed.
    cmake -B "$BUILD_DIR" -S . -DPQCACHE_NATIVE=OFF >/dev/null
  fi
  TIDY_CACHE_DIR="${TIDY_CACHE_DIR:-$BUILD_DIR/tidy-cache}"
  mkdir -p "$TIDY_CACHE_DIR"
  config_hash="$(sha256sum .clang-tidy | cut -d' ' -f1)"
  TIDY_ARGS=(-p "$BUILD_DIR" --quiet)
  if [ "$FIX_DRY_RUN" -eq 1 ]; then
    # Shows what --fix would change without touching the tree.
    TIDY_ARGS+=(--export-fixes="$BUILD_DIR/tidy-fixes.yaml")
  fi
  for f in $(find src -name '*.cc' | sort); do
    file_hash="$(sha256sum "$f" | cut -d' ' -f1)"
    stamp="$TIDY_CACHE_DIR/$(echo "$f" | tr '/' '_').$config_hash.$file_hash"
    if [ -e "$stamp" ] && [ "$FIX_DRY_RUN" -eq 0 ]; then
      continue
    fi
    # Judge by clang-tidy's own exit code: with WarningsAsErrors it exits
    # non-zero on any finding, and also on hard failures (file missing from
    # the compile database) that produce no 'error:' line — neither may be
    # stamped as clean.
    out="$("$CLANG_TIDY" "${TIDY_ARGS[@]}" "$f" 2>&1)"; rc=$?
    printf '%s\n' "$out" >> "$LOG"
    if [ "$rc" -ne 0 ]; then
      printf '%s\n' "$out"
      echo "clang-tidy: FAILED on $f"
      FAILED=1
    else
      [ "$FIX_DRY_RUN" -eq 0 ] && touch "$stamp"
    fi
  done
  if [ "$FIX_DRY_RUN" -eq 1 ] && [ -s "$BUILD_DIR/tidy-fixes.yaml" ]; then
    echo "proposed fixits written to $BUILD_DIR/tidy-fixes.yaml (not applied)"
  fi
  [ "$FAILED" -eq 0 ] && echo "clang-tidy: clean"
else
  echo "run_static_analysis: clang-tidy not found; skipping tidy pass."
fi

if [ "$FAILED" -ne 0 ]; then
  echo "static analysis FAILED; full log: $LOG"
  exit 1
fi
echo "static analysis: all passes clean"

// Fig. 8: per-layer prefill compute vs KV offload vs K-Means clustering time
// as the sequence length grows. Clustering times are REAL measurements of
// this repo's K-Means on this machine; compute times come from the GPU cost
// model (no GPU here; DESIGN.md Section 2); offload times from the PCIe
// model. Also reports the adaptive iteration budget T_max (Eq. 3).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/prefill_pipeline.h"
#include "src/sched/profiling.h"
#include "src/sched/system_model.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 8: one-layer prefill compute vs offload vs clustering\n"
      "clustering = real K-Means measurement (m=2, b=6, sub_dim=64)");
  ThreadPool pool;
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();

  // Fit Eq. 1 from real measurements before predicting.
  CalibrateClusteringModel(&sys, &pool);
  std::printf("fitted clustering model: t = %.4g + %.4g * (s*T) seconds\n",
              sys.clustering.clustering_fit().alpha,
              sys.clustering.clustering_fit().beta);

  TablePrinter table({"seq_len", "compute_s", "offload_s",
                      "cluster_T5_s(real)", "cluster_adaptive_s", "T_max"});
  for (size_t s : {1024, 4096, 16384, 65536, 131072}) {
    const double compute = sys.ComputeLayerSeconds(static_cast<double>(s));
    const double offload =
        sys.pcie.TransferSeconds(sys.LayerKVBytes(static_cast<double>(s)));
    const double measured = MeasureClusteringSeconds(
        s, static_cast<size_t>(sys.model.head_dim / sys.pq_partitions),
        1 << sys.pq_bits, 5, &pool);
    const int t_max = AdaptiveIterations(sys, static_cast<double>(s));
    const double adaptive =
        sys.ClusteringLayerSeconds(static_cast<double>(s), t_max);
    table.AddRow({std::to_string(s), bench::FormatSeconds(compute),
                  bench::FormatSeconds(offload),
                  bench::FormatSeconds(measured),
                  bench::FormatSeconds(adaptive), std::to_string(t_max)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 8: compute grows quadratically while\n"
      "offload and clustering grow linearly, so past a crossover length the\n"
      "GPU compute fully hides both -> the adaptive budget T_max grows with\n"
      "sequence length.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

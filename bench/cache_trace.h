// Builds a realistic GPU-cache access trace: the per-step top-k middle-token
// selections of a real PQCachePolicy over a long decode (rotating evidence
// targets + persistent heavy hitters), used by the Fig. 11c/d experiments.
#ifndef PQCACHE_BENCH_CACHE_TRACE_H_
#define PQCACHE_BENCH_CACHE_TRACE_H_

#include <memory>
#include <vector>

#include "src/policies/policy.h"
#include "src/policies/pqcache_policy.h"
#include "src/workload/generator.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace bench {

struct CacheTrace {
  size_t seq_len = 0;
  /// Per step: the middle-token ids fetched (anchors excluded — they are
  /// GPU-resident and never touch the cache).
  std::vector<std::vector<int32_t>> steps;
};

inline CacheTrace BuildCacheTrace(size_t seq_len, int n_steps,
                                  double token_ratio, uint64_t seed) {
  TaskSpec spec;
  spec.name = "cache_trace";
  spec.seq_len = seq_len;
  spec.n_instances = 1;
  spec.n_decode_steps = n_steps;
  spec.n_spans = 3;   // Few recurring topics: successive steps reuse the
  spec.chain = false; // same pivotal blocks (the paper's Section 3.4
                      // observation that certain tokens stay important).
  spec.span_len = 8;
  spec.evidence_mass = 0.55f;
  spec.context_correlation = 0.8f;  // Topic documents stay hot too.
  spec.n_documents = 64;
  spec.seed = seed;

  WorkloadGenerator gen(spec, 64, 1, 48);
  const InstanceLayout layout = gen.MakeLayout(0);
  const HeadData head = gen.MakeHead(layout, 0, 0);
  const PrefillObservation obs(head, layout.seq_len);

  SelectionContext ctx;
  ctx.spec = &spec;
  ctx.layout = &layout;
  ctx.head = &head;
  ctx.obs = &obs;
  ctx.budget.seq_len = seq_len;
  ctx.budget.n_init = 4;
  ctx.budget.local_window = 64;
  ctx.budget.token_budget =
      static_cast<size_t>(token_ratio * static_cast<double>(seq_len));
  ctx.budget.comm_ratio = 1.0 / 128;
  ctx.head_idx = 0;
  ctx.n_heads = 1;

  PQCachePolicyOptions options;
  options.num_partitions = 2;
  options.bits = 6;
  options.kmeans_iterations = 6;
  options.train_subsample = 8192;
  PQCachePolicy policy(options);
  const Status st = policy.Prepare(ctx);
  (void)st;

  CacheTrace trace;
  trace.seq_len = seq_len;
  const size_t middle_end = seq_len - ctx.budget.local_window;
  for (int step = 0; step < n_steps; ++step) {
    std::span<const float> q(
        head.dec_queries.data() + static_cast<size_t>(step) * head.dim,
        head.dim);
    std::vector<int32_t> selection = policy.Select(step, q);
    std::vector<int32_t> middle_only;
    for (int32_t t : selection) {
      if (static_cast<size_t>(t) >= ctx.budget.n_init &&
          static_cast<size_t>(t) < middle_end) {
        middle_only.push_back(t);
      }
    }
    trace.steps.push_back(std::move(middle_only));
  }
  return trace;
}

}  // namespace bench
}  // namespace pqcache

#endif  // PQCACHE_BENCH_CACHE_TRACE_H_

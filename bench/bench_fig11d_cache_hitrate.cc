// Fig. 11d: cache hit rate for LRU vs LFU across the number of top-k_cache
// blocks admitted per step (4K-token cache, 128-token blocks -> 32-block
// capacity). The curve rises while admissions focus on dense blocks and
// falls once the admitted block count exceeds capacity and thrashes.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "bench/cache_trace.h"
#include "src/cache/block_cache.h"
#include "src/eval/report.h"

namespace pqcache {
namespace {

double MeasureHitRate(const bench::CacheTrace& trace, EvictionPolicy policy,
                      size_t k_cache_blocks) {
  BlockCacheOptions options;
  options.capacity_tokens = 4096;
  options.block_tokens = 128;
  options.policy = policy;
  BlockCache cache(options);
  std::vector<bool> hits;
  for (const auto& step : trace.steps) {
    cache.Probe(step, &hits);
    cache.AdmitTopBlocks(step, k_cache_blocks);
  }
  return cache.stats().hit_rate();
}

void Run() {
  bench::PrintHeader(
      "Figure 11d: LRU/LFU hit rate vs top-k_cache admitted blocks\n"
      "(4K-token cache = 32 blocks; HotpotQA-like PQCache trace, 1/10 "
      "#tokens)");
  const bench::CacheTrace trace =
      bench::BuildCacheTrace(32768, 96, 0.1, /*seed=*/23);
  const std::vector<size_t> block_counts = {4, 8, 16, 32, 64, 96};

  std::vector<std::string> header = {"policy"};
  for (size_t b : block_counts) header.push_back(std::to_string(b));
  TablePrinter table(header);
  for (EvictionPolicy policy :
       {EvictionPolicy::kLRU, EvictionPolicy::kLFU}) {
    std::vector<std::string> row = {
        policy == EvictionPolicy::kLRU ? "LRU" : "LFU"};
    for (size_t b : block_counts) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    MeasureHitRate(trace, policy, b));
      row.push_back(buf);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 11d: LRU and LFU track each other; the\n"
      "hit rate peaks when the admitted block count matches the cache's\n"
      "32-block capacity (~0.5-0.6) and declines beyond it as admissions\n"
      "thrash the residency.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

// Table 3: the LongBench QA tasks with the question moved BEFORE the
// context. SnapKV(C)/PyramidKV(C) rely on the prompt tail revealing token
// importance and should collapse; PQCache retrieves at decode time and
// should not.
#include <iostream>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Table 3: question placed before the context\n"
      "(1/10 #tokens, 1/128 extra comm; compare SnapKV/PyramidKV vs PQCache)");
  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.1;
  options.comm_ratio = 1.0 / 128;
  QualityHarness harness(options);
  const SuiteSpec suite = MakeQuestionFirstSuite(/*seed=*/2024);
  const SuiteResult result =
      harness.RunSuite(suite, StandardMethodSet(bench::LongBenchPQ()));
  PrintSuiteResult(result, std::cout);
  std::printf(
      "\nShape check vs paper Table 3: with the question first, prefill\n"
      "queries never reveal the evidence (causality), so SnapKV(C) and\n"
      "PyramidKV(C) lose their advantage while PQCache stays robust.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

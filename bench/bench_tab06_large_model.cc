// Table 6: Llama-3.1-70B-scale behaviour. The 70B model has the same number
// of kv heads as the 8B (so clustering work per layer is unchanged) but far
// more GPU compute per layer, so the adaptive budget affords MORE K-Means
// iterations — PQCache approaches the uncompressed baseline even with half
// the CPU per GPU. We compute the iteration budgets from the 70B cost model
// and run the quality harness at those budgets.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/policies/basic_policies.h"
#include "src/sched/prefill_pipeline.h"
#include "src/sched/system_model.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

// The paper's Table 6 "Full" column anchors per-task presentation scales.
double Table6Scale(const std::string& task) {
  if (task == "narrativeqa") return 35.07;
  if (task == "qasper") return 49.97;
  if (task == "multifieldqa") return 54.20;
  if (task == "hotpotqa") return 64.95;
  if (task == "2wikimqa") return 67.85;
  if (task == "musique") return 46.78;
  if (task == "govreport") return 34.65;
  if (task == "qmsum") return 24.56;
  if (task == "multinews") return 26.95;
  if (task == "trec") return 76.50;
  if (task == "triviaqa") return 94.04;
  if (task == "samsum") return 47.37;
  if (task == "passage_count") return 20.00;
  if (task == "passage_retrieval") return 97.50;
  return 100.0;
}

void Run(ThreadPool* pool) {
  bench::PrintHeader(
      "Table 6: LongBench-like on a 70B-scale model\n"
      "(1/5 #tokens, 1/128 comm; Half / Same CPU per GPU)");

  // Iteration budgets from the 70B cost model at the suite's typical length.
  SystemModel same;
  same.model = ModelProfile::Llama3_70B();
  SystemModel half = same;
  half.cpu_speed_factor = 0.5;
  const double s_typical = 8192;
  const int iters_same = AdaptiveIterations(same, s_typical, 1, 40);
  const int iters_half = AdaptiveIterations(half, s_typical, 1, 40);
  std::printf("adaptive K-Means budget at s=%.0f: same-CPU T=%d, half-CPU T=%d\n",
              s_typical, iters_same, iters_half);

  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = 0.2;
  options.comm_ratio = 1.0 / 128;
  QualityHarness harness(options);

  SuiteSpec suite = MakeLongBenchLikeSuite(/*seed=*/2024);
  for (TaskSpec& t : suite.tasks) t.full_score_scale = Table6Scale(t.name);

  std::vector<MethodSpec> methods;
  methods.push_back(MakeMethod(
      "Full", [] { return std::make_unique<FullPolicy>(); }));
  methods.push_back(MakeMethod("PQC-Half", [iters_half] {
    PQCachePolicyOptions o = bench::LongBenchPQ();
    o.kmeans_iterations = iters_half;
    return std::make_unique<PQCachePolicy>(o);
  }));
  methods.push_back(MakeMethod("PQC-Same", [iters_same] {
    PQCachePolicyOptions o = bench::LongBenchPQ();
    o.kmeans_iterations = iters_same;
    return std::make_unique<PQCachePolicy>(o);
  }));
  const SuiteResult result = harness.RunSuite(suite, methods);
  PrintSuiteResult(result, std::cout);
  std::printf(
      "\nShape check vs paper Table 6: with the bigger model's compute\n"
      "hiding more clustering iterations, PQCache is within noise of the\n"
      "uncompressed baseline even at half the CPU resources.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::ThreadPool pool;
  pqcache::Run(&pool);
  return 0;
}

// Shared helpers for the table/figure reproduction binaries.
#ifndef PQCACHE_BENCH_BENCH_UTIL_H_
#define PQCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/common/threadpool.h"
#include "src/eval/harness.h"
#include "src/policies/pqcache_policy.h"

namespace pqcache {
namespace bench {

/// Default evaluation options sized for this machine (see DESIGN.md: the
/// virtual-head count and observation budget trade statistical smoothing
/// against runtime on a small CPU box).
inline EvalOptions DefaultEvalOptions(ThreadPool* pool) {
  EvalOptions options;
  options.dim = 64;
  options.n_heads = 4;
  options.n_obs = 48;
  options.pool = pool;
  return options;
}

/// PQ policy options matching the paper's LongBench setting (m=2, b=6).
inline PQCachePolicyOptions LongBenchPQ() {
  PQCachePolicyOptions o;
  o.num_partitions = 2;
  o.bits = 6;
  o.kmeans_iterations = 8;
  o.train_subsample = 8192;
  return o;
}

/// PQ policy options matching the paper's InfiniteBench setting (m=4, b=8).
inline PQCachePolicyOptions InfiniteBenchPQ() {
  PQCachePolicyOptions o;
  o.num_partitions = 4;
  o.bits = 8;
  o.kmeans_iterations = 6;
  o.train_subsample = 8192;
  return o;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Formats seconds as adaptive ms/s text.
inline std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "OOM");
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace bench
}  // namespace pqcache

#endif  // PQCACHE_BENCH_BENCH_UTIL_H_

// Fig. 11b: Time Per Output Token (TPOT) vs sequence length, with the human
// reading-speed line (~333 tokens/min) the paper uses as the serving bar.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/method_latency.h"
#include "src/sched/profiling.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 11b: Time Per Output Token vs sequence length\n"
      "(1/5 #tokens, 4K-token GPU cache at measured ~0.5 hit rate)");
  ThreadPool pool;
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();
  sys.cache_hit_rate = 0.5;
  CalibrateClusteringModel(&sys, &pool);

  const std::vector<MethodKind> methods = {
      MethodKind::kH2O,    MethodKind::kSnapKV, MethodKind::kPyramidKV,
      MethodKind::kSPARQ,  MethodKind::kInfLLM, MethodKind::kPQCache};
  const std::vector<double> lengths = {8192, 16384, 32768, 65536, 131072};

  std::vector<std::string> header = {"method"};
  for (double s : lengths) header.push_back(std::to_string((int)s));
  TablePrinter table(header);
  for (MethodKind kind : methods) {
    std::vector<std::string> row = {MethodKindName(kind)};
    for (double s : lengths) {
      const auto t = MethodTPOT(sys, kind, s);
      row.push_back(t ? bench::FormatSeconds(*t) : "OOM");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nhuman reading speed: %s per token\n",
              bench::FormatSeconds(HumanReadingSecondsPerToken()).c_str());
  std::printf(
      "Shape check vs paper Fig. 11b: SPARQ's TPOT grows linearly with s\n"
      "and crosses the reading-speed bar (serial dimension fetch); all\n"
      "other methods stay under it; PQCache's TPOT is nearly flat thanks to\n"
      "prefetching and the GPU cache.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

// Fig. 12a: prefill-phase time decomposition — GPU compute, KV offload,
// K-Means clustering, and the overlapped end-to-end total vs the sequential
// schedule. The headline: end-to-end ~ max(component), not sum(components).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/sched/prefill_pipeline.h"
#include "src/sched/profiling.h"

namespace pqcache {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 12a: prefill time decomposition (per full 32-layer prefill)\n"
      "adaptive K-Means iterations; clustering model fit from real K-Means");
  ThreadPool pool;
  SystemModel sys;
  sys.model = ModelProfile::Llama3_8B();
  CalibrateClusteringModel(&sys, &pool);

  TablePrinter table({"seq_len", "T", "gpu_compute", "offload", "kmeans",
                      "end_to_end", "sequential"});
  for (double s : {8192.0, 16384.0, 32768.0, 65536.0, 131072.0}) {
    const PrefillTimeline tl = SimulatePrefill(sys, s);
    double offload_total = 0, kmeans_total = 0;
    for (const auto& iv : tl.offload) offload_total += iv.duration();
    for (const auto& iv : tl.clustering) kmeans_total += iv.duration();
    table.AddRow({std::to_string((int)s),
                  std::to_string(tl.kmeans_iterations),
                  bench::FormatSeconds(tl.ttft),
                  bench::FormatSeconds(offload_total),
                  bench::FormatSeconds(kmeans_total),
                  bench::FormatSeconds(tl.end_to_end),
                  bench::FormatSeconds(tl.sequential_total)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 12a: offload time is negligible next to\n"
      "compute; with the adaptive iteration budget the K-Means total tracks\n"
      "the GPU compute total, and the overlapped end-to-end stays close to\n"
      "the GPU-compute-only time instead of the sequential sum.\n");
}

}  // namespace
}  // namespace pqcache

int main() {
  pqcache::Run();
  return 0;
}

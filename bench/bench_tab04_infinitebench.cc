// Table 4: InfiniteBench-like evaluation at 1/5 and 1/10 token budgets with
// 1/64 extra communication (longer contexts need more). PQ config m=4, b=8
// per the paper. Contexts run at 32K (scaled stand-in for ~100K; the
// mechanisms are length-independent, see DESIGN.md).
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/eval/report.h"
#include "src/workload/spec.h"

namespace pqcache {
namespace {

void RunSetting(ThreadPool* pool, double token_ratio) {
  char title[128];
  std::snprintf(title, sizeof(title),
                "Table 4: InfiniteBench-like | 1/%d #tokens + 1/64 extra comm",
                static_cast<int>(1.0 / token_ratio));
  bench::PrintHeader(title);
  EvalOptions options = bench::DefaultEvalOptions(pool);
  options.token_ratio = token_ratio;
  options.comm_ratio = 1.0 / 64;
  options.n_heads = 3;  // Longer contexts; keep runtime bounded.
  QualityHarness harness(options);
  const SuiteSpec suite = MakeInfiniteBenchLikeSuite(/*seed=*/4096);
  const SuiteResult result =
      harness.RunSuite(suite, StandardMethodSet(bench::InfiniteBenchPQ()));
  PrintSuiteResult(result, std::cout);
}

}  // namespace
}  // namespace pqcache

int main(int argc, char** argv) {
  pqcache::ThreadPool pool;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  pqcache::bench::PrintHeader(
      "Table 4 reproduction: InfiniteBench-like suite. Key row: Retr.KV,\n"
      "where importance emerges only at decode time — dropping methods and\n"
      "InfLLM collapse; PQCache stays near Oracle.");
  pqcache::RunSetting(&pool, 0.2);
  if (!quick) pqcache::RunSetting(&pool, 0.1);
  return 0;
}
